#include "lint/lexer.hpp"

namespace ilu::lint {

namespace {

bool is_ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool is_ident(char c) { return is_ident_start(c) || (c >= '0' && c <= '9'); }
bool is_digit(char c) { return c >= '0' && c <= '9'; }
bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f';
}

/// True for identifiers that are string-literal encoding prefixes when glued
/// to a quote: R"..", u8"..", LR"..", etc.
bool is_string_prefix(std::string_view s) {
  return s == "R" || s == "u8" || s == "u" || s == "U" || s == "L" ||
         s == "u8R" || s == "uR" || s == "UR" || s == "LR";
}

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  LexResult run() {
    while (i_ < src_.size()) step();
    return std::move(out_);
  }

 private:
  void step() {
    char c = src_[i_];
    if (c == '\n') {
      ++line_;
      line_has_code_ = false;
      ++i_;
      return;
    }
    if (is_space(c)) {
      ++i_;
      return;
    }
    if (c == '/' && i_ + 1 < src_.size()) {
      if (src_[i_ + 1] == '/') return line_comment();
      if (src_[i_ + 1] == '*') return block_comment();
    }
    if (c == '#' && !line_has_code_) return preprocessor_line();
    if (is_ident_start(c)) return identifier();
    if (is_digit(c) || (c == '.' && i_ + 1 < src_.size() &&
                        is_digit(src_[i_ + 1]))) {
      return number();
    }
    if (c == '"') return string_lit(/*raw=*/false);
    if (c == '\'') return char_lit();
    punct();
  }

  void emit(Tok kind, std::size_t begin, std::size_t end, int line) {
    out_.tokens.push_back(
        Token{kind, src_.substr(begin, end - begin), line});
    line_has_code_ = true;
  }

  void line_comment() {
    int line = line_;
    bool own = !line_has_code_;
    std::size_t begin = i_ + 2;
    i_ += 2;
    while (i_ < src_.size() && src_[i_] != '\n') ++i_;
    out_.comments.push_back(Comment{line, own, src_.substr(begin, i_ - begin)});
  }

  void block_comment() {
    int line = line_;
    bool own = !line_has_code_;
    std::size_t begin = i_ + 2;
    i_ += 2;
    std::size_t end = src_.size();
    while (i_ < src_.size()) {
      if (src_[i_] == '\n') ++line_;
      if (src_[i_] == '*' && i_ + 1 < src_.size() && src_[i_ + 1] == '/') {
        end = i_;
        i_ += 2;
        break;
      }
      ++i_;
    }
    out_.comments.push_back(Comment{line, own, src_.substr(begin, end - begin)});
    // A block comment does not make subsequent tokens non-leading for the
    // suppression "own line" rule, matching the common `/* ... */ code` case
    // conservatively: treat it as code.
    line_has_code_ = true;
  }

  /// Skip a preprocessor directive, honoring `\` line continuations. Line
  /// comments terminate it; block comments inside are crossed over. String
  /// and character literals are skipped as units so a raw string spanning
  /// lines (e.g. inside a #define) never leaks its contents into the token
  /// stream as live code, and an embedded `//` or apostrophe never derails
  /// the directive scan.
  void preprocessor_line() {
    line_has_code_ = true;
    while (i_ < src_.size()) {
      char c = src_[i_];
      if (c == '\n') {
        // Continuation if the previous non-space char was a backslash.
        std::size_t j = i_;
        while (j > 0 && is_space(src_[j - 1])) --j;
        bool cont = j > 0 && src_[j - 1] == '\\';
        ++line_;
        ++i_;
        if (!cont) {
          line_has_code_ = false;
          return;
        }
        continue;
      }
      if (c == '/' && i_ + 1 < src_.size() && src_[i_ + 1] == '/') {
        return line_comment_then_newline();
      }
      if (c == '/' && i_ + 1 < src_.size() && src_[i_ + 1] == '*') {
        block_comment();
        out_.comments.pop_back();  // not a suppression site
        continue;
      }
      if (c == '"') {
        skip_string_in_directive(preceding_prefix_is_raw());
        continue;
      }
      if (c == '\'' && !preceded_by_digit()) {
        skip_char_in_directive();
        continue;
      }
      ++i_;
    }
  }

  /// Is the identifier glued to the left of src_[i_] (== '"') a raw-string
  /// prefix ending in R? Used only inside preprocessor directives, where
  /// tokens are skipped rather than emitted.
  bool preceding_prefix_is_raw() const {
    std::size_t j = i_;
    while (j > 0 && is_ident(src_[j - 1])) --j;
    std::string_view prefix = src_.substr(j, i_ - j);
    return !prefix.empty() && prefix.back() == 'R' && is_string_prefix(prefix);
  }

  /// True when src_[i_] (== '\'') directly follows a digit — then it is a
  /// digit separator inside a pp-number, not a character literal.
  bool preceded_by_digit() const {
    return i_ > 0 && (is_digit(src_[i_ - 1]) ||
                      (is_ident(src_[i_ - 1]) && i_ > 1 &&
                       is_digit(src_[i_ - 2])));
  }

  /// Skip a (possibly raw) string literal inside a preprocessor directive,
  /// counting embedded newlines so later line numbers stay exact.
  void skip_string_in_directive(bool raw) {
    ++i_;  // opening quote
    if (raw) {
      std::size_t dstart = i_;
      while (i_ < src_.size() && src_[i_] != '(') ++i_;
      std::string closer = ")";
      closer += std::string(src_.substr(dstart, i_ - dstart));
      closer += '"';
      std::size_t pos = src_.find(closer, i_);
      if (pos == std::string_view::npos) {
        for (std::size_t j = i_; j < src_.size(); ++j)
          if (src_[j] == '\n') ++line_;
        i_ = src_.size();
      } else {
        for (std::size_t j = i_; j < pos; ++j)
          if (src_[j] == '\n') ++line_;
        i_ = pos + closer.size();
      }
    } else {
      while (i_ < src_.size() && src_[i_] != '"' && src_[i_] != '\n') {
        if (src_[i_] == '\\' && i_ + 1 < src_.size()) {
          if (src_[i_ + 1] == '\n') ++line_;
          ++i_;
        }
        ++i_;
      }
      if (i_ < src_.size() && src_[i_] == '"') ++i_;
    }
  }

  void skip_char_in_directive() {
    ++i_;  // opening quote
    while (i_ < src_.size() && src_[i_] != '\'' && src_[i_] != '\n') {
      if (src_[i_] == '\\' && i_ + 1 < src_.size()) ++i_;
      ++i_;
    }
    if (i_ < src_.size() && src_[i_] == '\'') ++i_;
  }

  void line_comment_then_newline() {
    while (i_ < src_.size() && src_[i_] != '\n') ++i_;
  }

  void identifier() {
    std::size_t begin = i_;
    while (i_ < src_.size() && is_ident(src_[i_])) ++i_;
    std::string_view text = src_.substr(begin, i_ - begin);
    if (i_ < src_.size() && src_[i_] == '"' && is_string_prefix(text)) {
      string_lit(text.back() == 'R');
      return;
    }
    if (i_ < src_.size() && src_[i_] == '\'' &&
        (text == "u8" || text == "u" || text == "U" || text == "L")) {
      char_lit();
      return;
    }
    emit(Tok::Identifier, begin, i_, line_);
  }

  void number() {
    std::size_t begin = i_;
    while (i_ < src_.size()) {
      char c = src_[i_];
      if (is_ident(c) || c == '.') {
        ++i_;
      } else if (c == '\'' && i_ + 1 < src_.size() && is_ident(src_[i_ + 1])) {
        i_ += 2;  // digit separator
      } else if ((c == '+' || c == '-') && i_ > begin &&
                 (src_[i_ - 1] == 'e' || src_[i_ - 1] == 'E' ||
                  src_[i_ - 1] == 'p' || src_[i_ - 1] == 'P')) {
        ++i_;  // exponent sign
      } else {
        break;
      }
    }
    emit(Tok::Number, begin, i_, line_);
  }

  void string_lit(bool raw) {
    int line = line_;
    std::size_t begin = i_;
    ++i_;  // opening quote
    if (raw) {
      // R"delim( ... )delim"
      std::size_t dstart = i_;
      while (i_ < src_.size() && src_[i_] != '(') ++i_;
      std::string closer = ")";
      closer += std::string(src_.substr(dstart, i_ - dstart));
      closer += '"';
      std::size_t pos = src_.find(closer, i_);
      if (pos == std::string_view::npos) {
        i_ = src_.size();
      } else {
        for (std::size_t j = i_; j < pos; ++j) {
          if (src_[j] == '\n') ++line_;
        }
        i_ = pos + closer.size();
      }
    } else {
      // A backslash-newline pair is a spliced line: the literal continues
      // on the next source line, which must still count toward line_.
      while (i_ < src_.size() && src_[i_] != '"' && src_[i_] != '\n') {
        if (src_[i_] == '\\' && i_ + 1 < src_.size()) {
          if (src_[i_ + 1] == '\n') ++line_;
          ++i_;
        }
        ++i_;
      }
      if (i_ < src_.size() && src_[i_] == '"') ++i_;
    }
    emit(Tok::String, begin, i_, line);
  }

  void char_lit() {
    std::size_t begin = i_;
    ++i_;  // opening quote
    while (i_ < src_.size() && src_[i_] != '\'' && src_[i_] != '\n') {
      if (src_[i_] == '\\' && i_ + 1 < src_.size()) ++i_;
      ++i_;
    }
    if (i_ < src_.size() && src_[i_] == '\'') ++i_;
    emit(Tok::CharLit, begin, i_, line_);
  }

  void punct() {
    std::size_t begin = i_;
    char c = src_[i_];
    if (i_ + 1 < src_.size() &&
        ((c == ':' && src_[i_ + 1] == ':') ||
         (c == '-' && src_[i_ + 1] == '>'))) {
      i_ += 2;
    } else {
      ++i_;
    }
    emit(Tok::Punct, begin, i_, line_);
  }

  std::string_view src_;
  std::size_t i_ = 0;
  int line_ = 1;
  bool line_has_code_ = false;
  LexResult out_;
};

}  // namespace

LexResult lex(std::string_view src) { return Lexer(src).run(); }

}  // namespace ilu::lint
