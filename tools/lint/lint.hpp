#pragma once

#include <cstddef>
#include <string>
#include <vector>

/// ilu-lint: repo-specific determinism & concurrency static analysis.
///
/// The simulation's contract — a fixed seed produces a byte-identical
/// ExperimentReport at any thread/shard count — holds only because sim code
/// obeys rules that no compiler enforces: no ambient wall clock or entropy,
/// no order-escaping iteration over unordered containers, no ordering keyed
/// on raw pointer values, threads confined to the runtime/experiment layers,
/// and `ilu::Task` instead of `std::function` on the event hot paths. Those
/// rules lived in DESIGN.md prose; ilu-lint turns them into named,
/// machine-checked findings over the token stream (see lexer.hpp).
///
/// Checks (scopes are path prefixes relative to src/):
///   wall-clock            std::chrono::*_clock::now(), time()/gettimeofday/
///                         localtime/gmtime/mktime, std::random_device,
///                         rand()/srand() anywhere except util/rng.*,
///                         runtime/real_runtime.*, exp/sweep.cpp, obs/.
///   unordered-iter        range-for or .begin()/.cbegin()/.rbegin() over a
///                         variable declared std::unordered_{map,set,
///                         multimap,multiset} (including via local `using`
///                         aliases and the paired header of a .cpp file), in
///                         sim-reachable code (everything except obs/,
///                         util/, exp/).
///   ptr-order             std::{map,set,multimap,multiset} or std::less
///                         keyed on a raw pointer type, anywhere in src/.
///   raw-thread            std::thread/jthread/mutex/condition_variable/
///                         atomic/future/promise/async outside runtime/,
///                         exp/, obs/, util/log.*, util/dcheck.*.
///   std-function-hotpath  std::function in runtime/, queueing/, or core/
///                         headers — use ilu::Task (runtime/task.hpp).
///   const-ref-capture     lambdas with by-reference captures that escape
///                         the scope that owns the captured locals: returned,
///                         passed to a deferring callee (schedule,
///                         schedule_at, post, send, defer), or stored via
///                         push_back/emplace_back/emplace/push. Exempt:
///                         exp/ (the sweep machinery joins its ref-capturing
///                         jobs before the scope exits, by design).
///   registry-lookup-hotpath  MetricsRegistry::counter/gauge/histogram/
///                         log_histogram called with a string-literal name
///                         inside a lambda body: event callbacks must use
///                         instrument pointers resolved at wiring time, not
///                         take the registry mutex per event. Exempt: obs/
///                         (the registry's own layer), exp/ (sweep jobs wire
///                         fresh panels per run).
///   rollback-unsafe-effect  in files carrying a
///                         `// ilu-lint: speculative-zone(<channel>,...) -
///                         <reason>` pragma — code the optimistic (Time
///                         Warp) shard scheduler may execute speculatively
///                         and roll back — every externally visible effect
///                         must be commit-buffered. flight::record and
///                         instrument ->inc/observe/set/add/sub calls are
///                         findings unless the pragma declares the flight /
///                         metrics channel (rewind-bracketed ring,
///                         checkpointed registry values respectively);
///                         util/log.* and stdio calls are always findings —
///                         a printed line cannot be unprinted, so the log
///                         channel cannot be declared, only allowed per
///                         site.
///
/// Whole-repo checks (cross-TU; run over every staged file at once, so
/// `--file` mode sees only single-TU facts while `--root` sees the full
/// lock/include/call graph — see model.hpp and cross_checks.cpp):
///   lock-order            two locks acquired in both orders anywhere in
///                         src/, through calls; both witness paths printed.
///   atomics-discipline    atomic ops confined to runtime/, obs/flight.*,
///                         util/dcheck.*, or files with an atomics-floor
///                         pragma; explicit memory_order below the floor.
///   blocking-under-lock   allocation / container growth / I/O / registry
///                         lookup while a lock is held (exempt obs/, exp/,
///                         util/).
///   include-layering      project includes must follow the layer DAG
///                         util → common → obs/metrics → trace/runtime →
///                         containers/keepalive/queueing → core/lb/baseline
///                         → exp; back-edges and cycles are findings.
///
/// Suppression: a finding on line L is suppressed by a comment on L (or a
/// comment-only line immediately above) of the form
///     // ilu-lint: allow(check-name[,check2]) - reason text
/// The reason is mandatory; an allow() without one (or naming an unknown
/// check) is itself reported under the reserved name `lint-suppression`,
/// which cannot be suppressed.
///
/// Atomics floor: a file owning atomics declares its minimum memory order
/// once, at the top:
///     // ilu-lint: atomics-floor(seq_cst: sleeping_) - Dekker handshake
///     // ilu-lint: atomics-floor(relaxed) - stats counters, monotone
/// `atomics-floor(ORDER)` sets the file default; `atomics-floor(ORDER:
/// var1, var2)` sets per-variable floors that override the default.
/// Explicit memory_order arguments weaker than the applicable floor are
/// findings; implicit ops are seq_cst and always pass. Outside the
/// concurrency zone, a pragma converts the file from blanket-banned to
/// floor-checked.
///
/// Speculative zone: a file whose code the optimistic shard scheduler may
/// run past the safe bound and roll back declares which effect channels it
/// has made commit-buffered, once, at the top:
///     // ilu-lint: speculative-zone(flight, metrics) - <why safe>
/// Channels are `flight` and `metrics`; `log` is rejected at parse time
/// (stdout cannot be rolled back). The pragma arms the
/// rollback-unsafe-effect check for the file.
namespace ilu::lint {

struct Finding {
  std::string path;  // as passed in (tree walks use paths relative to root)
  int line = 0;
  std::string check;
  std::string message;
};

struct CheckInfo {
  const char* name;
  const char* description;
};

/// Catalogue of all checks, in reporting order.
const std::vector<CheckInfo>& checks();

struct FileInput {
  /// Path relative to src/ (decides scopes and allowlists), e.g.
  /// "core/worker.hpp". Used verbatim in findings.
  std::string rel_path;
  std::string content;
  /// Content of the same-stem header for a .cpp file ("" when none):
  /// member declarations live there, so unordered-iter resolves through it.
  std::string paired_header;
};

/// Lint a set of files together: per-file checks on each, then the four
/// cross-TU checks over the whole set (the lock graph, atomic visibility
/// and include graph span exactly these inputs). Returns unsuppressed
/// findings plus any malformed directives, sorted by (path, line, check).
std::vector<Finding> lint_inputs(const std::vector<FileInput>& ins);

/// Lint one file alone — `lint_inputs({in})`. Cross-TU checks degrade
/// gracefully to the facts visible in this single TU.
std::vector<Finding> lint_file(const FileInput& in);

/// Load every .hpp/.cpp under `src_root` as FileInputs with paths relative
/// to `src_root`, sorted by path, with paired headers attached.
std::vector<FileInput> load_tree(const std::string& src_root);

/// Recursively lint every .hpp/.cpp under `src_root`. Findings carry paths
/// relative to `src_root` and are sorted by (path, line). `files_scanned`
/// (optional) receives the number of files visited.
std::vector<Finding> lint_tree(const std::string& src_root,
                               std::size_t* files_scanned = nullptr);

/// Render the whole-repo lock acquisition graph as deterministic Graphviz
/// (the committed tools/lint/lock_order.dot artifact; see DESIGN.md §15).
std::string lock_order_dot(const std::vector<FileInput>& ins);

}  // namespace ilu::lint
