#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

/// A small string-keyed digraph for ilu-lint's cross-TU analyses (the lock
/// acquisition graph and the include graph). Everything — node set,
/// adjacency, traversal frontiers — lives in sorted containers, so every
/// query has exactly one answer regardless of insertion order: witness paths
/// printed in findings are reproducible byte for byte across runs.
namespace ilu::lint {

class Digraph {
 public:
  void add_node(const std::string& n);
  /// Adds the edge if absent; the first label for a (from, to) pair wins,
  /// so inserting in source order keeps the earliest witness.
  void add_edge(const std::string& from, const std::string& to,
                const std::string& label);

  bool has_edge(const std::string& from, const std::string& to) const;
  /// Label of an existing edge, or nullptr.
  const std::string* edge_label(const std::string& from,
                                const std::string& to) const;
  std::vector<std::string> nodes() const;

  /// Shortest path from -> to as a node sequence (BFS, lexicographic
  /// tie-break). Empty when unreachable; {from} when from == to trivially.
  std::vector<std::string> path(const std::string& from,
                                const std::string& to) const;

  /// All unordered pairs {a, b} with a < b where a reaches b AND b reaches
  /// a — for the lock graph these are exactly the order inversions. Sorted.
  std::vector<std::pair<std::string, std::string>> mutually_reachable_pairs()
      const;

  /// One canonical cycle per non-trivial strongly connected component
  /// (self-loops included), as a node sequence starting and ending at the
  /// component's smallest node. Sorted by that node.
  std::vector<std::vector<std::string>> cycles() const;

  /// Graphviz source. Nodes and edges emitted in sorted order; edge labels
  /// become edge attributes.
  std::string dot(const std::string& name) const;

 private:
  /// Set of nodes reachable from n by >= 1 edge.
  std::vector<std::string> reach_from(const std::string& n) const;

  std::map<std::string, std::map<std::string, std::string>> adj_;
};

}  // namespace ilu::lint
