#include "trace/loadgen.hpp"

#include <gtest/gtest.h>

#include "runtime/sim_runtime.hpp"
#include "trace/function_profile.hpp"

namespace ilu {
namespace {

/// Trivial instant-success invoker that records submission times.
InvokeFn instant_invoker(Runtime& rt, std::vector<TimePoint>* submits) {
  return [&rt, submits](FunctionId fn,
                        std::function<void(const InvokeResult&)> cb) {
    if (submits) submits->push_back(rt.now());
    InvokeResult r;
    r.success = true;
    r.fn = fn;
    r.submitted = rt.now();
    r.exec_started = rt.now();
    r.completed = rt.now();
    rt.post([cb = std::move(cb), r] { cb(r); });
  };
}

/// Invoker that completes after a fixed service time.
InvokeFn delayed_invoker(Runtime& rt, Duration service) {
  return [&rt, service](FunctionId fn,
                        std::function<void(const InvokeResult&)> cb) {
    InvokeResult r;
    r.fn = fn;
    r.success = true;
    r.submitted = rt.now();
    r.exec_started = rt.now();
    r.exec_time = service;
    rt.schedule(service, [&rt, cb = std::move(cb), r]() mutable {
      r.completed = rt.now();
      cb(r);
    });
  };
}

TEST(OpenLoopDriver, SubmitsAtTraceTimes) {
  SimRuntime rt;
  std::vector<TimePoint> submits;
  Trace t;
  t.functions = {pyaes()};
  t.duration = secs(5);
  t.events = {{msecs(100), 0}, {msecs(250), 0}, {secs(3), 0}};
  OpenLoopDriver d(rt, instant_invoker(rt, &submits));
  d.start(t);
  rt.run();
  ASSERT_EQ(submits.size(), 3u);
  EXPECT_EQ(submits[0], msecs(100));
  EXPECT_EQ(submits[1], msecs(250));
  EXPECT_EQ(submits[2], secs(3));
  EXPECT_TRUE(d.done());
  EXPECT_EQ(d.results().size(), 3u);
}

TEST(OpenLoopDriver, OpenLoopDoesNotWaitForCompletions) {
  SimRuntime rt;
  Trace t;
  t.functions = {pyaes()};
  t.duration = secs(1);
  // Three events 10 ms apart; service time 1 s each.
  t.events = {{msecs(0), 0}, {msecs(10), 0}, {msecs(20), 0}};
  OpenLoopDriver d(rt, delayed_invoker(rt, secs(1)));
  d.start(t);
  rt.run_until(msecs(25));
  EXPECT_EQ(d.submitted(), 3u);   // all submitted despite none complete
  EXPECT_EQ(d.outstanding(), 3u);
  rt.run();
  EXPECT_TRUE(d.done());
}

TEST(OpenLoopDriver, EmptyTraceIsImmediatelyDone) {
  SimRuntime rt;
  Trace t;
  OpenLoopDriver d(rt, instant_invoker(rt, nullptr));
  d.start(t);
  rt.run();
  EXPECT_TRUE(d.done());
}

TEST(OpenLoopDriver, StartsRelativeToCurrentTime) {
  SimRuntime rt;
  rt.run_until(secs(100));
  std::vector<TimePoint> submits;
  Trace t;
  t.functions = {pyaes()};
  t.duration = secs(1);
  t.events = {{msecs(500), 0}};
  OpenLoopDriver d(rt, instant_invoker(rt, &submits));
  d.start(t);
  rt.run();
  ASSERT_EQ(submits.size(), 1u);
  EXPECT_EQ(submits[0], secs(100) + msecs(500));
}

TEST(ClosedLoopDriver, EachClientRunsIterations) {
  SimRuntime rt;
  ClosedLoopDriver d(rt, delayed_invoker(rt, msecs(10)), 0, /*clients=*/4);
  d.start(/*iterations_per_client=*/5);
  rt.run();
  EXPECT_TRUE(d.done());
  EXPECT_EQ(d.results().size(), 20u);
  // 5 serial invocations of 10 ms per client, clients run concurrently.
  EXPECT_EQ(rt.now(), msecs(50));
}

TEST(ClosedLoopDriver, SingleClientIsSerial) {
  SimRuntime rt;
  ClosedLoopDriver d(rt, delayed_invoker(rt, msecs(100)), 0, 1);
  d.start(3);
  rt.run();
  EXPECT_EQ(rt.now(), msecs(300));
  EXPECT_EQ(d.results().size(), 3u);
}

TEST(SyntheticTrace, ConstantSpacing) {
  std::vector<SyntheticFunctionSpec> specs{
      {.profile = pyaes(), .mean_iat = secs(1), .exponential = false},
  };
  auto t = make_synthetic_trace(specs, secs(5));
  EXPECT_TRUE(t.valid());
  ASSERT_EQ(t.events.size(), 5u);
  EXPECT_EQ(t.events[3].at, secs(3));
}

TEST(SyntheticTrace, PhaseOffset) {
  std::vector<SyntheticFunctionSpec> specs{
      {.profile = pyaes(), .mean_iat = secs(2), .phase = msecs(500)},
  };
  auto t = make_synthetic_trace(specs, secs(5));
  ASSERT_FALSE(t.events.empty());
  EXPECT_EQ(t.events[0].at, msecs(500));
}

TEST(SyntheticTrace, ExponentialMeanRateConverges) {
  std::vector<SyntheticFunctionSpec> specs{
      {.profile = pyaes(), .mean_iat = msecs(100), .exponential = true},
  };
  auto t = make_synthetic_trace(specs, secs(1000), /*seed=*/7);
  // Expect ~10000 events; Poisson noise is ~1%.
  EXPECT_NEAR(static_cast<double>(t.events.size()), 10000.0, 400.0);
}

TEST(SyntheticTrace, MergesMultipleFunctionsSorted) {
  std::vector<SyntheticFunctionSpec> specs{
      {.profile = pyaes(), .mean_iat = msecs(300)},
      {.profile = lookbusy(secs(1), 256), .mean_iat = msecs(700)},
  };
  auto t = make_synthetic_trace(specs, secs(10));
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.functions.size(), 2u);
  bool saw_both = false;
  for (const auto& e : t.events) {
    if (e.fn == 1) saw_both = true;
  }
  EXPECT_TRUE(saw_both);
}

TEST(TraceArena, PackRoundTripsAndSortsLikeStableSort) {
  auto profiles = function_bench();
  profiles.resize(4);
  std::vector<SyntheticFunctionSpec> specs;
  for (const auto& p : profiles) {
    specs.push_back({.profile = p, .mean_iat = secs(0.5), .exponential = true});
  }
  auto trace = make_synthetic_trace(specs, secs(30), 7);
  auto arena = make_synthetic_arena(specs, secs(30), 7);

  ASSERT_EQ(arena.size(), trace.events.size());
  for (std::size_t i = 0; i < arena.size(); ++i) {
    EXPECT_EQ(arena.at(i), trace.events[i].at) << "event " << i;
    EXPECT_EQ(arena.fn[i], trace.events[i].fn) << "event " << i;
  }
  EXPECT_EQ(arena.functions.size(), trace.functions.size());
  EXPECT_EQ(arena.duration, trace.duration);
}

TEST(TraceArena, ToTraceMaterializesIdenticalEvents) {
  auto profiles = function_bench();
  profiles.resize(3);
  std::vector<SyntheticFunctionSpec> specs;
  for (const auto& p : profiles) {
    specs.push_back({.profile = p, .mean_iat = secs(1.0), .exponential = true});
  }
  auto trace = make_synthetic_trace(specs, secs(20), 11);
  auto round = make_synthetic_arena(specs, secs(20), 11).to_trace();
  ASSERT_EQ(round.events.size(), trace.events.size());
  for (std::size_t i = 0; i < round.events.size(); ++i) {
    EXPECT_EQ(round.events[i].at, trace.events[i].at);
    EXPECT_EQ(round.events[i].fn, trace.events[i].fn);
  }
  EXPECT_TRUE(round.valid());
}

TEST(OpenLoopDriver, ArenaReplayMatchesTraceReplay) {
  auto profiles = function_bench();
  profiles.resize(3);
  std::vector<SyntheticFunctionSpec> specs;
  for (const auto& p : profiles) {
    specs.push_back({.profile = p, .mean_iat = secs(0.8), .exponential = true});
  }
  auto trace = make_synthetic_trace(specs, secs(15), 5);
  auto arena = make_synthetic_arena(specs, secs(15), 5);

  auto replay = [](auto&& start) {
    SimRuntime rt;
    std::vector<TimePoint> submits;
    OpenLoopDriver d(rt, instant_invoker(rt, &submits));
    start(d);
    rt.run();
    EXPECT_TRUE(d.done());
    return submits;
  };
  auto from_trace = replay([&](OpenLoopDriver& d) { d.start(trace); });
  auto from_arena = replay([&](OpenLoopDriver& d) { d.start(arena); });
  ASSERT_EQ(from_trace.size(), trace.events.size());
  EXPECT_EQ(from_arena, from_trace);
}

TEST(CyclicTrace, RotatesThroughFunctions) {
  auto profiles = function_bench();
  profiles.resize(3);
  auto t = make_cyclic_trace(profiles, secs(1), secs(9));
  ASSERT_EQ(t.events.size(), 9u);
  EXPECT_EQ(t.events[0].fn, 0u);
  EXPECT_EQ(t.events[1].fn, 1u);
  EXPECT_EQ(t.events[2].fn, 2u);
  EXPECT_EQ(t.events[3].fn, 0u);
  EXPECT_TRUE(t.valid());
}

}  // namespace
}  // namespace ilu
