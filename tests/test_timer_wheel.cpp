#include "runtime/timer_wheel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "runtime/sim_runtime.hpp"
#include "util/rng.hpp"

// TimerWheel is clock-free: the consumer supplies now_us. That makes every
// single-threaded test here fully deterministic — no sleeps, no flaky wall
// clock — including the cascade paths, which are driven with synthetic
// jumps of hours.
namespace ilu {
namespace {

constexpr std::uint64_t kTick = 1ull << TimerWheel::kTickShiftUs;  // 1024 us

TEST(TimerWheel, ArmFiresAtExactDeadlineNotTickStart) {
  TimerWheel w;
  w.bind_consumer();
  int fired = 0;
  w.arm(5000, [&] { ++fired; });
  // 5000 us sits inside tick 4 (4096..5119): the tick being current must
  // not fire it early.
  EXPECT_EQ(w.advance(4999), 0u);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(w.advance(5000), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(w.live(), 0u);
}

TEST(TimerWheel, ZeroDelayFiresOnNextAdvance) {
  TimerWheel w;
  w.bind_consumer();
  bool ran = false;
  w.arm(0, [&] { ran = true; });
  EXPECT_EQ(w.advance(0), 1u);
  EXPECT_TRUE(ran);
}

TEST(TimerWheel, FiresInDeadlineThenSeqOrder) {
  TimerWheel w;
  w.bind_consumer();
  std::vector<int> order;
  w.arm(70000, [&] { order.push_back(3); });
  w.arm(20000, [&] { order.push_back(1); });
  w.arm(20000, [&] { order.push_back(2); });  // equal deadline: FIFO
  w.arm(500000, [&] { order.push_back(4); });
  std::uint64_t now = 0;
  while (w.live() != 0) {
    now += 7777;
    w.advance(now);
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(TimerWheel, NeverFiresBeforeDeadline) {
  TimerWheel w;
  w.bind_consumer();
  Rng rng(1234);
  std::uint64_t now = 0;
  std::atomic<std::uint64_t> current_now{0};
  int violations = 0;
  int fired = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t deadline = rng.uniform_index(2'000'000);
    w.arm(deadline, [&, deadline] {
      ++fired;
      if (current_now.load() < deadline) ++violations;
    });
  }
  while (w.live() != 0) {
    now += 1 + rng.uniform_index(4000);
    current_now.store(now);
    w.advance(now);
  }
  EXPECT_EQ(fired, 2000);
  EXPECT_EQ(violations, 0);
}

TEST(TimerWheel, CancelPreventsFireAndDoubleCancelIsFalse) {
  TimerWheel w;
  w.bind_consumer();
  bool ran = false;
  const auto id = w.arm(50000, [&] { ran = true; });
  EXPECT_TRUE(w.cancel(id, /*on_consumer_thread=*/true));
  EXPECT_FALSE(w.cancel(id, true));
  EXPECT_EQ(w.live(), 0u);
  w.advance(100000);
  EXPECT_FALSE(ran);
}

TEST(TimerWheel, CancelAfterFireReturnsFalse) {
  TimerWheel w;
  w.bind_consumer();
  const auto id = w.arm(1000, [] {});
  EXPECT_EQ(w.advance(2000), 1u);
  EXPECT_FALSE(w.cancel(id, true));
  EXPECT_FALSE(w.cancel(id, false));
}

TEST(TimerWheel, StaleIdOnReusedSlotIsRejected) {
  TimerWheel w;
  w.bind_consumer();
  const auto id1 = w.arm(1000, [] {});
  EXPECT_EQ(w.advance(2000), 1u);
  // The freed slot is recycled for the next arm; the old id's generation
  // no longer matches.
  const auto id2 = w.arm(5000, [] {});
  EXPECT_EQ(id1 & 0xffffffffu, id2 & 0xffffffffu);  // same slot reused
  EXPECT_NE(id1, id2);
  EXPECT_FALSE(w.cancel(id1, true));
  EXPECT_TRUE(w.cancel(id2, true));
}

TEST(TimerWheel, CancelFromCallbackOfSameTickTimerReturnsTrue) {
  TimerWheel w;
  w.bind_consumer();
  bool second_ran = false;
  bool cancel_result = false;
  TimerWheel::TimerId second = 0;
  w.arm(9000, [&] { cancel_result = w.cancel(second, true); });
  second = w.arm(9050, [&] { second_ran = true; });
  w.advance(20000);
  EXPECT_TRUE(cancel_result);
  EXPECT_FALSE(second_ran);
  EXPECT_EQ(w.live(), 0u);
}

TEST(TimerWheel, ScheduleFromCallbackFiresLater) {
  TimerWheel w;
  w.bind_consumer();
  std::vector<int> order;
  w.arm(1000, [&] {
    order.push_back(1);
    w.arm(3000, [&] { order.push_back(2); });
  });
  w.advance(2000);
  EXPECT_EQ(w.live(), 1u);
  w.advance(4000);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(TimerWheel, CascadesThroughEveryLevel) {
  TimerWheel w;
  w.bind_consumer();
  // One timer per wheel level: near (L0), ~0.4 s (L1), ~120 s (L2),
  // ~5 h (L3), plus one past the 51-day horizon (clamped, re-cascades).
  const std::uint64_t deadlines[] = {
      200 * kTick / 256 + 5000,      // L0
      400'000,                       // L1
      120ull * 1'000'000,            // L2
      5ull * 3600 * 1'000'000,      // L3
      60ull * 86400 * 1'000'000,    // beyond horizon -> clamp + re-cascade
  };
  std::atomic<std::uint64_t> current_now{0};
  int fired = 0;
  int violations = 0;
  for (const std::uint64_t d : deadlines)
    w.arm(d, [&, d] {
      ++fired;
      if (current_now.load() < d) ++violations;
    });
  std::uint64_t now = 0;
  // March far past the last deadline in coarse, uneven jumps.
  while (w.live() != 0 && now < 61ull * 86400 * 1'000'000) {
    now += 37'000'000;  // 37 s per step: crosses many cascade boundaries
    current_now.store(now);
    w.advance(now);
  }
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(violations, 0);
}

TEST(TimerWheel, HintIsExactForCurrentTickAndLowerBoundForFar) {
  TimerWheel w;
  w.bind_consumer();
  w.advance(4500);  // current tick 4
  std::uint64_t hint = 0;
  EXPECT_FALSE(w.next_deadline_hint(&hint));
  w.arm(5000, [] {});  // same tick as now
  ASSERT_TRUE(w.next_deadline_hint(&hint));
  EXPECT_EQ(hint, 5000u);

  const auto far = w.arm(10'000'000, [] {});  // 10 s out (L2)
  ASSERT_TRUE(w.next_deadline_hint(&hint));
  EXPECT_EQ(hint, 5000u);  // near timer still dominates
  EXPECT_TRUE(w.cancel(far, true));
}

TEST(TimerWheel, SleepAdvanceLoopConvergesOnFarDeadline) {
  // Simulates RealRuntime's idle loop: sleep to the hint, advance, re-hint.
  // Each wake either fires the timer or crosses a cascade boundary, so the
  // loop must converge in a handful of iterations, never spin.
  TimerWheel w;
  w.bind_consumer();
  const std::uint64_t deadline = 90ull * 1'000'000;  // 90 s: L2
  bool ran = false;
  w.arm(deadline, [&] { ran = true; });
  std::uint64_t now = 0;
  int wakes = 0;
  while (w.live() != 0) {
    std::uint64_t hint = 0;
    ASSERT_TRUE(w.next_deadline_hint(&hint));
    EXPECT_LE(hint, deadline);
    EXPECT_GT(hint, now);  // hint is always in the future: no busy spin
    now = hint;
    w.advance(now);
    ASSERT_LT(++wakes, 10);
  }
  EXPECT_TRUE(ran);
  EXPECT_EQ(now, deadline);  // final wake is exactly the deadline
}

TEST(TimerWheel, StagedNodesFireAfterDrain) {
  TimerWheel w;
  w.bind_consumer();
  int fired = 0;
  for (int i = 0; i < 10; ++i) w.stage(1000 + i, [&] { ++fired; });
  EXPECT_TRUE(w.has_staged());
  EXPECT_EQ(w.live(), 10u);
  EXPECT_EQ(w.drain_staged(), 10u);
  EXPECT_FALSE(w.has_staged());
  EXPECT_EQ(w.advance(5000), 10u);
  EXPECT_EQ(fired, 10);
}

TEST(TimerWheel, CancelWhileStagedIsReapedAtDrain) {
  TimerWheel w;
  w.bind_consumer();
  bool ran = false;
  const auto id = w.stage(1000, [&] { ran = true; });
  EXPECT_TRUE(w.cancel(id, true));  // home not set yet: no eager unlink
  EXPECT_EQ(w.live(), 0u);
  w.drain_staged();
  w.advance(5000);
  EXPECT_FALSE(ran);
}

TEST(TimerWheel, MemoryBoundedUnderScheduleCancelChurn) {
  // The old tombstone set grew forever under cancel churn. The wheel must
  // recycle: 50 rounds of (1000 arms, 1000 cancels) may not materialize
  // more than ~2 chunks of nodes.
  TimerWheel w;
  w.bind_consumer();
  std::uint64_t now = 0;
  std::vector<TimerWheel::TimerId> ids;
  ids.reserve(1000);
  for (int round = 0; round < 50; ++round) {
    ids.clear();
    for (int i = 0; i < 1000; ++i)
      ids.push_back(w.arm(now + 2000, [] { ADD_FAILURE(); }));
    for (const auto id : ids) ASSERT_TRUE(w.cancel(id, true));
    now += 3000;
    w.advance(now);
  }
  EXPECT_EQ(w.live(), 0u);
  EXPECT_LE(w.node_capacity(), 2048u);
}

TEST(TimerWheel, CrossThreadCancelMemoryStaysBounded) {
  // Cross-thread cancels cannot unlink eagerly — lazily reaped nodes must
  // still be recycled by the consumer's slot passes, not accumulate.
  TimerWheel w;
  w.bind_consumer();
  std::uint64_t now = 0;
  std::vector<TimerWheel::TimerId> ids;
  for (int round = 0; round < 50; ++round) {
    ids.clear();
    for (int i = 0; i < 500; ++i)
      ids.push_back(w.arm(now + 2000, [] { ADD_FAILURE(); }));
    std::thread canceller([&] {
      for (const auto id : ids) ASSERT_TRUE(w.cancel(id, false));
    });
    canceller.join();
    now += 3000;
    w.advance(now);  // reaps the cancelled tick
  }
  EXPECT_EQ(w.live(), 0u);
  EXPECT_LE(w.node_capacity(), 2048u);
}

// Property test: on an identical randomized schedule (with deliberate
// deadline collisions), the wheel must deliver callbacks in exactly the
// order SimRuntime's indexed heap does — the Runtime ordering contract
// (non-decreasing deadline, FIFO among equals) is the shared spec.
TEST(TimerWheel, OrderingMatchesSimRuntimeOnSameSchedule) {
  SimRuntime sim;
  TimerWheel wheel;
  wheel.bind_consumer();
  Rng rng(99);
  std::vector<int> sim_order, wheel_order;
  std::vector<std::pair<Runtime::TimerId, TimerWheel::TimerId>> ids;
  constexpr int kN = 5000;
  for (int i = 0; i < kN; ++i) {
    // Mix of exact-collision deadlines (multiples of 10 ms) and arbitrary
    // ones, spanning levels 0-2 of the wheel.
    const bool collide = (rng.uniform_index(4) == 0);
    const std::uint64_t deadline =
        collide ? rng.uniform_index(41) * 10'000
                : rng.uniform_index(90'000'000);
    const auto sid =
        sim.schedule(usecs(static_cast<std::int64_t>(deadline)),
                     [&sim_order, i] { sim_order.push_back(i); });
    const auto wid = wheel.arm(deadline, [&wheel_order, i] {
      wheel_order.push_back(i);
    });
    ids.emplace_back(sid, wid);
  }
  // Cancel the same random quarter on both sides.
  for (int i = 0; i < kN; ++i) {
    if (rng.uniform_index(4) == 0) {
      EXPECT_EQ(sim.cancel(ids[static_cast<std::size_t>(i)].first),
                wheel.cancel(ids[static_cast<std::size_t>(i)].second, true));
    }
  }
  sim.run();
  std::uint64_t now = 0;
  while (wheel.live() != 0) {
    now += 500 + rng.uniform_index(1'000'000);
    wheel.advance(now);
  }
  ASSERT_EQ(wheel_order.size(), sim_order.size());
  EXPECT_EQ(wheel_order, sim_order);
}

// ---- concurrency storms (meaningful under TSan; see tools/check_all.sh) ----

TEST(TimerWheelConcurrency, MultiProducerStageAndCancelStorm) {
  TimerWheel w;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> now_us{0};
  std::atomic<std::uint64_t> fired{0};
  std::atomic<std::uint64_t> cancelled{0};
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;

  std::thread consumer([&] {
    w.bind_consumer();
    while (!stop.load(std::memory_order_acquire) || w.live() != 0 ||
           w.has_staged()) {
      w.drain_staged();
      const std::uint64_t t = now_us.fetch_add(150) + 150;
      w.advance(t);
    }
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(static_cast<std::uint64_t>(p) + 7);
      std::vector<TimerWheel::TimerId> mine;
      mine.reserve(kPerProducer);
      for (int i = 0; i < kPerProducer; ++i) {
        const std::uint64_t deadline =
            now_us.load(std::memory_order_relaxed) +
            rng.uniform_index(20'000);
        mine.push_back(w.stage(deadline, [&fired] {
          fired.fetch_add(1, std::memory_order_relaxed);
        }));
        // Cancel roughly half, sometimes a stale earlier id (exercising
        // cancel-after-fire from foreign threads).
        if (rng.uniform_index(2) == 0) {
          const auto victim = mine[rng.uniform_index(mine.size())];
          if (w.cancel(victim, false))
            cancelled.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  stop.store(true, std::memory_order_release);
  consumer.join();

  EXPECT_EQ(fired.load() + cancelled.load(),
            static_cast<std::uint64_t>(kProducers) * kPerProducer);
  EXPECT_EQ(w.live(), 0u);
  EXPECT_FALSE(w.has_staged());
}

TEST(TimerWheelConcurrency, ProducersRaceConsumerTeardown) {
  // Producers keep staging while the consumer stops draining and the wheel
  // is destroyed: staged-but-never-drained Tasks must be released by the
  // destructor (ASan-visible if not) and nothing may crash.
  for (int iter = 0; iter < 20; ++iter) {
    std::atomic<bool> go{false};
    std::atomic<int> staged{0};
    {
      TimerWheel w;
      w.bind_consumer();
      std::vector<std::thread> producers;
      for (int p = 0; p < 3; ++p) {
        producers.emplace_back([&] {
          while (!go.load(std::memory_order_acquire)) {}
          for (int i = 0; i < 200; ++i) {
            w.stage(1'000'000, [] {});
            staged.fetch_add(1, std::memory_order_relaxed);
          }
        });
      }
      go.store(true, std::memory_order_release);
      w.drain_staged();  // races the producers on purpose
      for (auto& t : producers) t.join();
    }  // destructor runs with live staged/linked nodes
    EXPECT_EQ(staged.load(), 600);
  }
}

}  // namespace
}  // namespace ilu
