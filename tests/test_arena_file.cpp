// Tests for the ilu-arena-v1 on-disk format (DESIGN.md §13): packed-key
// round-trips, the EventView column abstraction over all three storage
// layouts, strict-open rejection of malformed files, the deferred verify()
// integrity scan, and the determinism contract of the chunked generator
// (byte-identical to a one-shot build_arena + write_arena_file pass).

#include "trace/arena_file.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "trace/arena_gen.hpp"
#include "trace/azure.hpp"
#include "trace/event_view.hpp"
#include "trace/workload.hpp"

namespace ilu {
namespace {

namespace fs = std::filesystem;

std::string tmp_path(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void dump(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

TraceArena tiny_arena() {
  TraceArena a;
  FunctionProfile p0;
  p0.name = "fn_a";
  p0.mem_mb = 128;
  p0.warm_time = msecs(100);
  p0.init_time = secs(2);
  FunctionProfile p1 = p0;
  p1.name = "fn_b";
  p1.mem_mb = 512;
  p1.cpus = 2.0;
  a.functions = {p0, p1};
  a.duration = secs(10);
  a.at_us = {0, 1'000'000, 2'000'000, 2'000'000, 9'999'999};
  a.fn = {0, 1, 0, 1, 0};
  return a;
}

std::string write_tiny(const std::string& name) {
  auto path = tmp_path(name);
  write_arena_file(tiny_arena(), path);
  return path;
}

// ---------------------------------------------------------------- pack keys

TEST(PackedKeys, RoundTripBoundaries) {
  struct Case {
    std::int64_t at_us;
    FunctionId fn;
  } cases[] = {
      {0, 0},
      {0, static_cast<FunctionId>(TraceArena::kMaxFn)},
      {TraceArena::kMaxUs, 0},
      {TraceArena::kMaxUs, static_cast<FunctionId>(TraceArena::kMaxFn)},
      {123'456'789, 54321},
  };
  for (const auto& c : cases) {
    std::uint64_t k = TraceArena::pack(TimePoint{c.at_us}, c.fn);
    EXPECT_EQ(TraceArena::key_at(k).count(), c.at_us);
    EXPECT_EQ(TraceArena::key_fn(k), c.fn);
  }
}

TEST(PackedKeys, SortOrderIsTimeMajor) {
  // Same timestamp sorts by fn; later timestamp always sorts after, even
  // with a smaller fn.
  auto k = [](std::int64_t us, FunctionId fn) {
    return TraceArena::pack(TimePoint{us}, fn);
  };
  EXPECT_LT(k(5, 1), k(5, 2));
  EXPECT_LT(k(5, static_cast<FunctionId>(TraceArena::kMaxFn)), k(6, 0));
}

// ---------------------------------------------------------------- EventView

TEST(EventViewLayouts, AllThreeLayoutsAgree) {
  TraceArena arena = tiny_arena();
  Trace trace;
  trace.functions = arena.functions;
  trace.duration = arena.duration;
  for (std::size_t i = 0; i < arena.size(); ++i)
    trace.events.push_back({arena.at(i), arena.fn[i]});
  std::vector<std::uint64_t> keys;
  for (std::size_t i = 0; i < arena.size(); ++i)
    keys.push_back(TraceArena::pack(arena.at(i), arena.fn[i]));

  EventView aos(trace);
  EventView soa(arena);
  EventView packed = EventView::packed(keys.data(), keys.size());
  ASSERT_EQ(aos.size(), arena.size());
  ASSERT_EQ(soa.size(), arena.size());
  ASSERT_EQ(packed.size(), arena.size());
  for (std::size_t i = 0; i < arena.size(); ++i) {
    EXPECT_EQ(aos.at(i), soa.at(i)) << i;
    EXPECT_EQ(aos.at(i), packed.at(i)) << i;
    EXPECT_EQ(aos.fn(i), soa.fn(i)) << i;
    EXPECT_EQ(aos.fn(i), packed.fn(i)) << i;
  }
}

// --------------------------------------------------------------- round trip

TEST(ArenaFile, RoundTripPreservesEverything) {
  auto path = write_tiny("ilu_rt.arena");
  ArenaFile f(path);
  EXPECT_EQ(f.size(), 5u);
  EXPECT_EQ(f.duration(), secs(10));
  ASSERT_EQ(f.functions().size(), 2u);
  EXPECT_EQ(f.functions()[0].name, "fn_a");
  EXPECT_EQ(f.functions()[1].name, "fn_b");
  EXPECT_EQ(f.functions()[1].mem_mb, 512u);
  EXPECT_EQ(f.functions()[1].cpus, 2.0);
  EXPECT_EQ(f.functions()[0].warm_time, msecs(100));
  EXPECT_EQ(f.functions()[0].init_time, secs(2));
  f.verify();  // full integrity scan must pass on a fresh file

  TraceArena back = f.to_arena();
  TraceArena orig = tiny_arena();
  ASSERT_EQ(back.size(), orig.size());
  for (std::size_t i = 0; i < orig.size(); ++i) {
    EXPECT_EQ(back.at(i), orig.at(i)) << i;
    EXPECT_EQ(back.fn[i], orig.fn[i]) << i;
  }
  std::remove(path.c_str());
}

TEST(ArenaFile, ViewMatchesAccessors) {
  auto path = write_tiny("ilu_view.arena");
  ArenaFile f(path);
  EventView v = f.view();
  ASSERT_EQ(v.size(), f.size());
  for (std::size_t i = 0; i < f.size(); ++i) {
    EXPECT_EQ(v.at(i), f.at(i));
    EXPECT_EQ(v.fn(i), f.fn(i));
  }
  std::remove(path.c_str());
}

TEST(ArenaFile, KeyColumnIsPageAligned) {
  auto path = write_tiny("ilu_align.arena");
  ArenaFile f(path);
  auto addr = reinterpret_cast<std::uintptr_t>(f.keys());
  EXPECT_EQ(addr % kArenaKeyAlign, 0u);
  std::remove(path.c_str());
}

TEST(ArenaFile, ReleaseKeysBeforeKeepsDataReadable) {
  // Build a file big enough to span several pages so the madvise path
  // actually fires, then release mid-column and re-read everything.
  TraceArena a;
  FunctionProfile p;
  p.name = "f";
  p.warm_time = msecs(1);
  p.init_time = msecs(2);
  a.functions = {p};
  for (std::int64_t i = 0; i < 4096; ++i) {
    a.at_us.push_back(i * 1000);
    a.fn.push_back(0);
  }
  a.duration = secs(10);
  auto path = tmp_path("ilu_release.arena");
  write_arena_file(a, path);

  ArenaFile f(path);
  for (std::size_t i = 0; i < f.size(); ++i)
    EXPECT_EQ(f.at(i).count(), std::int64_t(i) * 1000);
  f.release_keys_before(f.size() / 2);
  f.release_keys_before(f.size());
  // Released pages fault back in from the file — values unchanged.
  for (std::size_t i = 0; i < f.size(); ++i) {
    ASSERT_EQ(f.at(i).count(), std::int64_t(i) * 1000) << i;
    ASSERT_EQ(f.fn(i), 0u);
  }
  f.verify();
  std::remove(path.c_str());
}

// ------------------------------------------------------------------- writer

TEST(ArenaFileWriter, RejectsOutOfOrderKeys) {
  auto path = tmp_path("ilu_unsorted_w.arena");
  ArenaFileWriter w(path);
  FunctionProfile p;
  p.name = "f";
  w.begin({p}, secs(1));
  std::uint64_t keys[] = {TraceArena::pack(TimePoint{5}, 0),
                          TraceArena::pack(TimePoint{3}, 0)};
  EXPECT_THROW(w.append_keys(keys, 2), std::logic_error);
  std::remove(path.c_str());
}

TEST(ArenaFileWriter, RejectsUnknownFunction) {
  auto path = tmp_path("ilu_badfn_w.arena");
  ArenaFileWriter w(path);
  FunctionProfile p;
  p.name = "f";
  w.begin({p}, secs(1));
  std::uint64_t key = TraceArena::pack(TimePoint{1}, 1);  // only fn 0 exists
  EXPECT_THROW(w.append_keys(&key, 1), std::logic_error);
  std::remove(path.c_str());
}

// ------------------------------------------------------------- strict open

class ArenaFileCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    // ctest runs each discovered test as its own process, possibly in
    // parallel — the fixture path must be unique per test.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = write_tiny(std::string("ilu_corrupt_") + info->name() + ".arena");
    bytes_ = slurp(path_);
    ASSERT_GT(bytes_.size(), kArenaHeaderBytes);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void expect_open_throws() {
    dump(path_, bytes_);
    EXPECT_THROW(ArenaFile f(path_), std::runtime_error);
  }

  std::string path_;
  std::vector<std::uint8_t> bytes_;
};

TEST_F(ArenaFileCorruption, BadMagic) {
  bytes_[0] ^= 0xFF;
  expect_open_throws();
}

TEST_F(ArenaFileCorruption, BadVersion) {
  bytes_[8] = 99;  // u32 version at offset 8
  expect_open_throws();
}

TEST_F(ArenaFileCorruption, TruncatedHeader) {
  bytes_.resize(kArenaHeaderBytes / 2);
  expect_open_throws();
}

TEST_F(ArenaFileCorruption, TruncatedKeyColumn) {
  bytes_.resize(bytes_.size() - 8);  // drop the last key: size mismatch
  expect_open_throws();
}

TEST_F(ArenaFileCorruption, TrailingGarbage) {
  bytes_.push_back(0);  // file larger than keys_offset + 8*num_events
  expect_open_throws();
}

TEST_F(ArenaFileCorruption, CorruptFunctionTableFailsMetaChecksum) {
  bytes_[kArenaHeaderBytes + 4] ^= 0xFF;  // first byte of fn 0's name
  expect_open_throws();
}

TEST_F(ArenaFileCorruption, CorruptHeaderFieldFailsMetaChecksum) {
  bytes_[24] ^= 0x01;  // num_events low byte: counts no longer match checksum
  expect_open_throws();
}

// Key-column damage passes the O(functions) open but must fail verify().
TEST_F(ArenaFileCorruption, FlippedKeyByteFailsVerify) {
  bytes_[bytes_.size() - 1] ^= 0x01;  // top byte of the last key
  dump(path_, bytes_);
  ArenaFile f(path_);  // strict open only covers header + function table
  EXPECT_THROW(f.verify(), std::runtime_error);
}

TEST_F(ArenaFileCorruption, UnsortedKeysFailVerify) {
  // Swap the first two keys; refresh the stored checksum so the sortedness
  // check (not the checksum) is what trips.
  const std::size_t keys_off = bytes_.size() - 5 * 8;
  for (int b = 0; b < 8; ++b)
    std::swap(bytes_[keys_off + b], bytes_[keys_off + 8 + b]);
  dump(path_, bytes_);
  EXPECT_THROW(
      {
        ArenaFile f(path_);
        f.verify();
      },
      std::runtime_error);
}

// --------------------------------------------------- chunked generation

TEST(ArenaGen, ChunkedFileByteIdenticalToOneShot) {
  AzureModelConfig cfg;
  cfg.population = 600;
  cfg.days = 0.05;
  cfg.seed = 99;
  AzureTraceModel model(cfg);
  std::vector<std::size_t> idx(600);
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;

  auto one_shot = tmp_path("ilu_gen_oneshot.arena");
  write_arena_file(model.build_arena(idx, 1.0), one_shot);

  // Deliberately awkward chunk size (not a divisor of 600) to exercise the
  // short final chunk and a real k-way merge.
  ArenaGenConfig gcfg;
  gcfg.chunk_functions = 37;
  auto chunked = tmp_path("ilu_gen_chunked.arena");
  auto stats = generate_arena_file(model, idx, 1.0, chunked, gcfg);
  EXPECT_EQ(stats.functions, 600u);
  EXPECT_GT(stats.chunks, 1u);
  EXPECT_GT(stats.events, 0u);

  EXPECT_EQ(slurp(one_shot), slurp(chunked));
  ArenaFile f(chunked);
  f.verify();
  EXPECT_EQ(f.size(), stats.events);
  std::remove(one_shot.c_str());
  std::remove(chunked.c_str());
}

TEST(ArenaGen, SingleChunkFastPathMatchesToo) {
  AzureModelConfig cfg;
  cfg.population = 200;
  cfg.days = 0.05;
  cfg.seed = 7;
  AzureTraceModel model(cfg);
  std::vector<std::size_t> idx(200);
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;

  auto one_shot = tmp_path("ilu_gen_oneshot2.arena");
  write_arena_file(model.build_arena(idx, 1.0), one_shot);
  auto single = tmp_path("ilu_gen_single.arena");
  auto stats = generate_arena_file(model, idx, 1.0, single);  // default chunk > 200
  EXPECT_EQ(stats.chunks, 1u);
  EXPECT_EQ(slurp(one_shot), slurp(single));
  std::remove(one_shot.c_str());
  std::remove(single.c_str());
}

TEST(ArenaGen, RateScaleHitsTargetEvents) {
  AzureModelConfig cfg;
  cfg.population = 500;
  cfg.days = 0.1;
  cfg.seed = 3;
  AzureTraceModel model(cfg);
  std::vector<std::size_t> idx(500);
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;

  const double target = 20000.0;
  double scale = rate_scale_for_target_events(model, idx, target);
  ASSERT_GT(scale, 0.0);
  auto path = tmp_path("ilu_gen_target.arena");
  auto stats = generate_arena_file(model, idx, scale, path);
  // Realized count is Poisson around the analytic expectation; 10% slack is
  // generous at 2e4 events (sigma ~ sqrt(target) ≈ 0.7%).
  EXPECT_NEAR(static_cast<double>(stats.events), target, 0.1 * target);
  std::remove(path.c_str());
}

TEST(ArenaGen, ProgressCallbackCoversAllFunctions) {
  AzureModelConfig cfg;
  cfg.population = 100;
  cfg.days = 0.02;
  AzureTraceModel model(cfg);
  std::vector<std::size_t> idx(100);
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;

  ArenaGenConfig gcfg;
  gcfg.chunk_functions = 30;
  std::size_t last_fns = 0;
  std::uint64_t last_events = 0;
  std::size_t calls = 0;
  gcfg.progress = [&](std::size_t fns, std::uint64_t events) {
    EXPECT_GE(fns, last_fns);
    EXPECT_GE(events, last_events);
    last_fns = fns;
    last_events = events;
    ++calls;
  };
  auto path = tmp_path("ilu_gen_progress.arena");
  auto stats = generate_arena_file(model, idx, 1.0, path, gcfg);
  EXPECT_EQ(calls, stats.chunks);
  EXPECT_EQ(last_fns, 100u);
  EXPECT_EQ(last_events, stats.events);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ilu
