// Death tests for the debug-build ownership auditor (DESIGN.md §10).
//
// This binary compiles the two runtime TUs directly with ILU_DEBUG_CHECKS=1
// (see tests/CMakeLists.txt) instead of linking the main library, so the
// auditor is active regardless of the outer build type and no ODR conflict
// with the Release-configured libiluvatar arises.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>

#include "runtime/sharded_runtime.hpp"
#include "runtime/sim_runtime.hpp"
#include "util/dcheck.hpp"

namespace {

static_assert(ILU_DEBUG_CHECKS == 1,
              "this test must build with the ownership auditor enabled");

class OwnershipGuardDeathTest : public ::testing::Test {
 protected:
  OwnershipGuardDeathTest() {
    // Death tests fork; threadsafe style re-executes the binary so the
    // threads spawned inside the EXPECT_DEATH body are safe.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

TEST_F(OwnershipGuardDeathTest, CrossThreadScheduleAborts) {
  EXPECT_DEATH(
      {
        ilu::SimRuntime rt;  // owned by this (the constructing) thread
        std::thread intruder(
            [&rt] { rt.schedule(ilu::Duration{1}, [] {}); });
        intruder.join();
      },
      "does not own");
}

TEST_F(OwnershipGuardDeathTest, CrossThreadNowAborts) {
  EXPECT_DEATH(
      {
        ilu::SimRuntime rt;
        std::thread intruder([&rt] { (void)rt.now(); });
        intruder.join();
      },
      "does not own");
}

TEST_F(OwnershipGuardDeathTest, CrossShardScheduleDuringRunAborts) {
  EXPECT_DEATH(
      {
        ilu::ShardedRuntime srt(2, ilu::Duration{100});
        // Event on shard 0 pokes shard 1's heap directly instead of going
        // through send(): shard 1 is bound to its own window thread while
        // the run is in flight, so the auditor must abort.
        srt.shard(0).schedule(ilu::Duration{10}, [&srt] {
          srt.shard(1).schedule(ilu::Duration{1}, [] {});
        });
        // Give shard 1 work so its window thread is alive and bound.
        srt.shard(1).schedule(ilu::Duration{500000}, [] {});
        srt.run_until(ilu::TimePoint{1000000});
      },
      "does not own");
}

TEST_F(OwnershipGuardDeathTest, ConservativePastSendAborts) {
  // Under conservative sync a cross-shard send inside the lookahead horizon
  // breaks the engine's safety argument outright, so it aborts.
  EXPECT_DEATH(
      {
        ilu::ShardedRuntime srt(2, ilu::Duration{100});
        srt.shard(0).schedule(ilu::Duration{10}, [&srt] {
          srt.send(0, 1, srt.shard(0).now() + ilu::Duration{1}, 7, [] {});
        });
        srt.shard(1).schedule(ilu::Duration{500}, [] {});
        srt.run_until(ilu::TimePoint{1000});
      },
      "lookahead promise");
}

TEST_F(OwnershipGuardDeathTest, OptimisticSendMustBeInSendersFuture) {
  // The optimistic engine tolerates sends into the *destination's* past
  // (rollback repairs those) but a send at or before the *sender's* own now
  // would let a re-run re-straggle forever, so it aborts.
  EXPECT_DEATH(
      {
        ilu::SyncConfig cfg;
        cfg.strategy = ilu::SyncStrategy::kOptimistic;
        ilu::ShardedRuntime srt(2, ilu::Duration{100}, cfg);
        srt.shard(0).schedule(ilu::Duration{10}, [&srt] {
          srt.send(0, 1, srt.shard(0).now(), 7, [] {});
        });
        srt.shard(1).schedule(ilu::Duration{500}, [] {});
        srt.run_until(ilu::TimePoint{1000});
      },
      "strict future");
}

TEST(OwnershipGuard, OptimisticStragglerRollsBackInsteadOfAborting) {
  // The same shape that aborts under conservative sync — a message landing
  // inside the destination's already-executed window — is legal under the
  // optimistic engine: the straggler scan rolls shard 1 back and re-runs.
  ilu::SyncConfig cfg;
  cfg.strategy = ilu::SyncStrategy::kOptimistic;
  cfg.speculation = 8.0;
  ilu::ShardedRuntime srt(2, ilu::Duration{100}, cfg);
  // Dense local work keeps shard 1 speculating far past shard 0's horizon.
  for (std::int64_t t = 10; t <= 2000; t += 10) {
    srt.shard(1).schedule(ilu::Duration{t}, [] {});
  }
  std::uint64_t delivered = 0;
  srt.shard(0).schedule(ilu::Duration{1000}, [&srt, &delivered] {
    srt.send(0, 1, srt.shard(0).now() + ilu::Duration{1}, 7,
             [&delivered] { ++delivered; });
  });
  srt.run_until(ilu::TimePoint{3000});
  EXPECT_EQ(delivered, 1u);
  EXPECT_GE(srt.rollbacks(), 1u)
      << "the send must have landed in shard 1's speculated past";
  EXPECT_GE(srt.anti_messages(), 1u);
}

TEST_F(OwnershipGuardDeathTest, IluDcheckAborts) {
  EXPECT_DEATH({ ILU_DCHECK(1 + 1 == 3, "arithmetic still works"); },
               "ILU_DCHECK failed");
}

TEST(OwnershipGuard, BindHandsOffCleanly) {
  // A deliberate handoff (bind on the new thread, externally synchronized by
  // the join) is legal: the second thread becomes the owner, and the driver
  // re-binds afterwards.
  ilu::SimRuntime rt;
  std::uint64_t fired = 0;
  std::thread worker([&] {
    rt.bind_owner();
    rt.schedule(ilu::Duration{5}, [&fired] { ++fired; });
    rt.run();
  });
  worker.join();
  rt.bind_owner();
  EXPECT_EQ(fired, 1u);
  EXPECT_EQ(rt.pending(), 0u);
}

TEST(OwnershipGuard, ShardedRunWithProperSendsPasses) {
  // The sanctioned protocol — cross-shard work through send(), ownership
  // rebound to the driver after the run — must not trip the auditor.
  ilu::ShardedRuntime srt(2, ilu::Duration{100});
  std::uint64_t delivered = 0;
  srt.shard(0).schedule(ilu::Duration{10}, [&srt, &delivered] {
    auto at = srt.shard(0).now() + ilu::Duration{100};
    srt.send(0, 1, at, 7, [&delivered] { ++delivered; });
  });
  srt.run_until(ilu::TimePoint{1000});
  EXPECT_EQ(delivered, 1u);
  // Driver owns every shard again: direct scheduling is legal here.
  srt.shard(1).schedule(ilu::Duration{1}, [&delivered] { ++delivered; });
  srt.run_until(ilu::TimePoint{2000});
  EXPECT_EQ(delivered, 2u);
}

}  // namespace
