#include "containers/netns_pool.hpp"

#include <gtest/gtest.h>

#include "runtime/sim_runtime.hpp"

namespace ilu {
namespace {

NetnsPool::Config pool_cfg(std::size_t target, bool enabled = true) {
  NetnsPool::Config cfg;
  cfg.target_size = target;
  cfg.low_watermark = target / 2;
  cfg.create_latency = LatencyModel::constant(msecs(100));
  cfg.enabled = enabled;
  return cfg;
}

TEST(NetnsPool, PooledAcquireIsFree) {
  SimRuntime rt;
  NetnsPool pool(rt, Rng(1), pool_cfg(8));
  Duration penalty = secs(999);
  pool.acquire([&](std::uint64_t id, Duration p) {
    EXPECT_GT(id, 0u);
    penalty = p;
  });
  EXPECT_EQ(penalty, Duration::zero());
  EXPECT_EQ(pool.pooled_serves(), 1u);
}

TEST(NetnsPool, ExhaustedPoolPaysSerializedCreation) {
  SimRuntime rt;
  NetnsPool pool(rt, Rng(1), pool_cfg(2));
  // Drain the pool.
  pool.acquire([](std::uint64_t, Duration) {});
  pool.acquire([](std::uint64_t, Duration) {});
  // Next three acquires queue behind the global lock: 100/200/300 ms —
  // except background refills may also hold the lock; penalties must be
  // strictly increasing multiples of 100 ms.
  std::vector<Duration> penalties;
  for (int i = 0; i < 3; ++i) {
    pool.acquire([&](std::uint64_t, Duration p) { penalties.push_back(p); });
  }
  ASSERT_EQ(penalties.size(), 3u);
  EXPECT_GT(penalties[0], Duration::zero());
  EXPECT_GT(penalties[1], penalties[0]);
  EXPECT_GT(penalties[2], penalties[1]);
  EXPECT_EQ((penalties[1] - penalties[0]).count() % msecs(100).count(), 0);
}

TEST(NetnsPool, BackgroundRefillRestoresPool) {
  SimRuntime rt;
  NetnsPool pool(rt, Rng(1), pool_cfg(4));
  for (int i = 0; i < 4; ++i) pool.acquire([](std::uint64_t, Duration) {});
  EXPECT_EQ(pool.available(), 0u);
  rt.run_until(secs(5));
  EXPECT_EQ(pool.available(), 4u);
}

TEST(NetnsPool, RefillTriggersAtLowWatermark) {
  SimRuntime rt;
  NetnsPool pool(rt, Rng(1), pool_cfg(8));  // watermark 4
  for (int i = 0; i < 5; ++i) pool.acquire([](std::uint64_t, Duration) {});
  EXPECT_EQ(pool.available(), 3u);
  rt.run_until(secs(5));
  EXPECT_EQ(pool.available(), 8u);
}

TEST(NetnsPool, DisabledPoolAlwaysPays) {
  SimRuntime rt;
  NetnsPool pool(rt, Rng(1), pool_cfg(8, /*enabled=*/false));
  Duration penalty{};
  pool.acquire([&](std::uint64_t, Duration p) { penalty = p; });
  EXPECT_EQ(penalty, msecs(100));
  EXPECT_EQ(pool.critical_path_creates(), 1u);
  EXPECT_EQ(pool.pooled_serves(), 0u);
}

TEST(NetnsPool, IdsAreUnique) {
  SimRuntime rt;
  NetnsPool pool(rt, Rng(1), pool_cfg(4));
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 10; ++i) {
    pool.acquire([&](std::uint64_t id, Duration) { ids.push_back(id); });
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

TEST(NetnsPool, GlobalLockSharedBetweenRefillAndOnDemand) {
  SimRuntime rt;
  NetnsPool pool(rt, Rng(1), pool_cfg(2));
  // Drain and trigger refill; an immediate on-demand creation must queue
  // behind the in-flight background refill creation.
  pool.acquire([](std::uint64_t, Duration) {});
  pool.acquire([](std::uint64_t, Duration) {});  // refill starts
  Duration penalty{};
  pool.acquire([&](std::uint64_t, Duration p) { penalty = p; });
  EXPECT_GE(penalty, msecs(200));  // behind at least one refill creation
}

}  // namespace
}  // namespace ilu
