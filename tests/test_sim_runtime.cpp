#include "runtime/sim_runtime.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ilu {
namespace {

TEST(SimRuntime, ExecutesInTimeOrder) {
  SimRuntime rt;
  std::vector<int> order;
  rt.schedule(msecs(30), [&] { order.push_back(3); });
  rt.schedule(msecs(10), [&] { order.push_back(1); });
  rt.schedule(msecs(20), [&] { order.push_back(2); });
  rt.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(rt.now(), msecs(30));
}

TEST(SimRuntime, FifoAmongEqualDeadlines) {
  SimRuntime rt;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    rt.schedule(msecs(10), [&, i] { order.push_back(i); });
  }
  rt.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimRuntime, NestedSchedulingAdvancesTime) {
  SimRuntime rt;
  TimePoint inner_time{};
  rt.schedule(secs(1), [&] {
    rt.schedule(secs(2), [&] { inner_time = rt.now(); });
  });
  rt.run();
  EXPECT_EQ(inner_time, secs(3));
}

TEST(SimRuntime, PostRunsAtCurrentTime) {
  SimRuntime rt;
  rt.schedule(secs(5), [&] {
    rt.post([&] { EXPECT_EQ(rt.now(), secs(5)); });
  });
  rt.run();
  EXPECT_EQ(rt.now(), secs(5));
}

TEST(SimRuntime, CancelPreventsExecution) {
  SimRuntime rt;
  bool fired = false;
  auto id = rt.schedule(msecs(10), [&] { fired = true; });
  EXPECT_TRUE(rt.cancel(id));
  rt.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(rt.pending(), 0u);
}

TEST(SimRuntime, CancelAfterFireReturnsFalse) {
  // Regression: the old tombstone implementation returned true for *any*
  // id < next_id_, leaking fired ids into the cancelled set forever and
  // making pending() underflow. The indexed heap detects the fired timer
  // exactly via the slot generation.
  SimRuntime rt;
  auto id = rt.schedule(msecs(1), [] {});
  rt.run();
  EXPECT_FALSE(rt.cancel(id));
  EXPECT_FALSE(rt.cancel(id));  // idempotent
  EXPECT_EQ(rt.pending(), 0u);
  bool fired = false;
  rt.schedule(msecs(1), [&] { fired = true; });
  EXPECT_EQ(rt.pending(), 1u);
  rt.run();
  EXPECT_TRUE(fired);
}

TEST(SimRuntime, PendingStaysExactUnderCancelChurn) {
  SimRuntime rt;
  std::vector<Runtime::TimerId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(rt.schedule(msecs(i + 1), [] {}));
  }
  EXPECT_EQ(rt.pending(), 100u);
  // Cancel half while pending: exact decrements, double cancel is false.
  for (int i = 0; i < 100; i += 2) {
    EXPECT_TRUE(rt.cancel(ids[i]));
    EXPECT_FALSE(rt.cancel(ids[i]));
  }
  EXPECT_EQ(rt.pending(), 50u);
  rt.run();
  EXPECT_EQ(rt.pending(), 0u);
  EXPECT_EQ(rt.events_processed(), 50u);
  // Cancelling fired (or already-cancelled) ids after the run never lies
  // and never corrupts pending().
  for (auto id : ids) EXPECT_FALSE(rt.cancel(id));
  EXPECT_EQ(rt.pending(), 0u);
}

TEST(SimRuntime, CancelledTimerNeverFiresAfterIdReuse) {
  // Slot recycling must not let a stale TimerId cancel a newer event.
  SimRuntime rt;
  auto a = rt.schedule(msecs(1), [] {});
  rt.run();  // `a` fires; its slot is recycled below
  bool fired = false;
  rt.schedule(msecs(1), [&] { fired = true; });
  EXPECT_FALSE(rt.cancel(a));  // stale id must not hit the new event
  rt.run();
  EXPECT_TRUE(fired);
}

TEST(SimRuntime, CancelInvalidId) {
  SimRuntime rt;
  EXPECT_FALSE(rt.cancel(Runtime::kInvalidTimer));
  EXPECT_FALSE(rt.cancel(9999));
}

TEST(SimRuntime, RunUntilStopsAtBoundaryAndAdvancesClock) {
  SimRuntime rt;
  std::vector<int> order;
  rt.schedule(secs(1), [&] { order.push_back(1); });
  rt.schedule(secs(3), [&] { order.push_back(3); });
  rt.run_until(secs(2));
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(rt.now(), secs(2));
  EXPECT_EQ(rt.pending(), 1u);
  rt.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(SimRuntime, RunUntilInclusiveOfBoundary) {
  SimRuntime rt;
  bool fired = false;
  rt.schedule(secs(2), [&] { fired = true; });
  rt.run_until(secs(2));
  EXPECT_TRUE(fired);
}

TEST(SimRuntime, RunForAdvancesRelative) {
  SimRuntime rt;
  rt.run_until(secs(10));
  int count = 0;
  rt.schedule(secs(4), [&] { ++count; });
  rt.schedule(secs(6), [&] { ++count; });
  rt.run_for(secs(5));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(rt.now(), secs(15));
}

TEST(SimRuntime, StepReturnsFalseWhenEmpty) {
  SimRuntime rt;
  EXPECT_FALSE(rt.step());
  rt.schedule(msecs(1), [] {});
  EXPECT_TRUE(rt.step());
  EXPECT_FALSE(rt.step());
}

TEST(SimRuntime, EventsProcessedCounter) {
  SimRuntime rt;
  for (int i = 0; i < 10; ++i) rt.schedule(msecs(i), [] {});
  rt.run();
  EXPECT_EQ(rt.events_processed(), 10u);
}

TEST(SimRuntime, CancelledEventNotCountedAsPending) {
  SimRuntime rt;
  auto a = rt.schedule(msecs(1), [] {});
  rt.schedule(msecs(2), [] {});
  rt.cancel(a);
  EXPECT_EQ(rt.pending(), 1u);
}

TEST(SimRuntime, ManyEventsStress) {
  SimRuntime rt;
  constexpr int kN = 100000;
  std::uint64_t sum = 0;
  for (int i = 0; i < kN; ++i) {
    rt.schedule(usecs((i * 7919) % 1000), [&sum] { ++sum; });
  }
  rt.run();
  EXPECT_EQ(sum, static_cast<std::uint64_t>(kN));
}

TEST(SimRuntime, RecursiveChainTerminates) {
  SimRuntime rt;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 1000) rt.schedule(usecs(1), chain);
  };
  rt.post(chain);
  rt.run();
  EXPECT_EQ(depth, 1000);
  EXPECT_EQ(rt.now(), usecs(999));
}

TEST(SimRuntime, TaggedEventsOrderBeforePlainAndByTag) {
  SimRuntime rt;
  std::vector<int> order;
  // Plain events first chronologically-in-insertion, then tagged ones out
  // of tag order: execution must be tag 1, tag 4, then the plain pair.
  rt.schedule(msecs(1), [&] { order.push_back(100); });
  rt.schedule(msecs(1), [&] { order.push_back(101); });
  rt.schedule_tagged(msecs(1), 4, [&] { order.push_back(4); });
  rt.schedule_tagged(msecs(1), 1, [&] { order.push_back(1); });
  rt.run();
  EXPECT_EQ(order, (std::vector<int>{1, 4, 100, 101}));
}

TEST(SimRuntime, TaggedEventsCancelable) {
  SimRuntime rt;
  bool fired = false;
  auto id = rt.schedule_tagged(msecs(1), 9, [&] { fired = true; });
  EXPECT_TRUE(rt.cancel(id));
  rt.run();
  EXPECT_FALSE(fired);
}

TEST(SimRuntime, RunBeforeFiresStrictlyEarlierWithoutAdvancingClock) {
  SimRuntime rt;
  std::vector<int> order;
  rt.schedule(msecs(1), [&] { order.push_back(1); });
  rt.schedule(msecs(2), [&] { order.push_back(2); });
  rt.schedule(msecs(3), [&] { order.push_back(3); });
  rt.run_before(msecs(3));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  // now() sits at the last fired event, NOT the bound: a tagged insertion
  // at exactly the bound must still satisfy the at >= now precondition.
  EXPECT_EQ(rt.now(), msecs(2));
  rt.schedule_tagged(msecs(3), 0, [&] { order.push_back(30); });
  rt.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 30, 3}));
}

TEST(SimRuntime, NextDeadlinePeeksWithoutExecuting) {
  SimRuntime rt;
  EXPECT_FALSE(rt.next_deadline().has_value());
  rt.schedule(msecs(7), [] {});
  ASSERT_TRUE(rt.next_deadline().has_value());
  EXPECT_EQ(*rt.next_deadline(), msecs(7));
  EXPECT_EQ(rt.now(), Duration::zero());
}

}  // namespace
}  // namespace ilu
