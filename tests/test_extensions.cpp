// Tests for the research-platform extensions: the clairvoyant oracle
// policy, snapshot-based cold starts, the stretch-signal AIMD regulator,
// and the energy meter.

#include <gtest/gtest.h>

#include "containers/backend.hpp"
#include "core/energy.hpp"
#include "keepalive/clairvoyant.hpp"
#include "keepalive/simulator.hpp"
#include "queueing/regulator.hpp"
#include "runtime/sim_runtime.hpp"
#include "trace/azure.hpp"
#include "trace/function_profile.hpp"
#include "trace/loadgen.hpp"

namespace ilu {
namespace {

// ---------- ClairvoyantPolicy ----------

TEST(Clairvoyant, NextUseTracksTrace) {
  Trace t;
  t.functions = {lookbusy(secs(1), 100, secs(1))};
  t.duration = mins(10);
  t.events = {{secs(10), 0}, {secs(50), 0}, {secs(200), 0}};
  ClairvoyantPolicy p(t);
  EXPECT_EQ(p.next_use(0), secs(10));
  p.on_invocation(0, secs(10));
  EXPECT_EQ(p.next_use(0), secs(50));
  p.on_invocation(0, secs(50));
  EXPECT_EQ(p.next_use(0), secs(200));
  p.on_invocation(0, secs(200));
  // Exhausted: sentinel far future.
  EXPECT_GT(p.next_use(0), secs(1e9));
}

TEST(Clairvoyant, RanksFurthestNextUseForEviction) {
  Trace t;
  t.functions = {lookbusy(secs(1), 100, secs(1)),
                 lookbusy(secs(1), 100, secs(1))};
  t.duration = mins(10);
  t.events = {{secs(0), 0}, {secs(0), 1}, {secs(30), 0}, {secs(300), 1}};
  ClairvoyantPolicy p(t);
  p.on_invocation(0, secs(0));
  p.on_invocation(1, secs(0));
  CacheEntry a;
  a.fn = 0;
  CacheEntry b;
  b.fn = 1;
  // fn1's next use (300 s) is further than fn0's (30 s) -> lower rank.
  EXPECT_LT(p.eviction_rank(b), p.eviction_rank(a));
}

TEST(Clairvoyant, UnknownFunctionIsNeverNeeded) {
  Trace t;
  t.functions = {lookbusy(secs(1), 100, secs(1))};
  t.duration = secs(10);
  ClairvoyantPolicy p(t);
  CacheEntry e;
  e.fn = 42;
  CacheEntry known;
  known.fn = 0;
  EXPECT_LE(p.eviction_rank(e), p.eviction_rank(known));
}

TEST(Clairvoyant, OracleBeatsOnlinePoliciesOnMissRatio) {
  // The Belady property (uniform-size variant): with equal sizes/costs the
  // oracle's miss count is a lower bound for any online policy.
  AzureModelConfig cfg;
  cfg.population = 500;
  cfg.days = 0.2;
  cfg.seed = 31;
  // Uniform memory/cost so Belady optimality applies.
  cfg.min_fn_mem_mb = 128;
  cfg.max_fn_mem_mb = 128;
  cfg.app_mem_median_mb = 128;
  AzureTraceModel model(cfg);
  auto trace = model.sample_random(60);
  // Equalize init costs.
  for (auto& f : trace.functions) f.init_time = secs(1);

  ClairvoyantPolicy oracle(trace);
  auto o = run_keepalive_sim_with(trace, oracle, 2 * 1024);
  for (const char* pol : {"LRU", "GD", "FREQ", "TTL"}) {
    auto r = run_keepalive_sim(trace, pol, 2 * 1024);
    EXPECT_LE(o.stats.cold_starts, r.stats.cold_starts)
        << "oracle must not lose to " << pol;
  }
}

// ---------- snapshot cold starts ----------

TEST(SnapshotColdStarts, SecondCreateIsFast) {
  SimRuntime rt;
  CpuModel cpu(rt, 4.0);
  auto profile = BackendLatencyProfile::containerd();
  profile.snapshot_cold_starts = true;
  profile.snapshot_restore = LatencyModel::constant(msecs(60));
  profile.create = LatencyModel::constant(msecs(300));
  profile.agent_start = LatencyModel::constant(msecs(200));
  SimContainerBackend be(rt, cpu, Rng(1), profile);

  auto fn = pyaes();
  TimePoint first_done{}, second_done{};
  be.create_container(fn, [&](bool ok) {
    EXPECT_TRUE(ok);
    first_done = rt.now();
    be.create_container(fn, [&](bool ok2) {
      EXPECT_TRUE(ok2);
      second_done = rt.now();
    });
  });
  rt.run();
  EXPECT_EQ(first_done, msecs(500));            // full create + agent
  EXPECT_EQ(second_done - first_done, msecs(60));  // snapshot restore
  EXPECT_EQ(be.snapshot_restores(), 1u);
}

TEST(SnapshotColdStarts, DistinctFunctionsGetOwnSnapshots) {
  SimRuntime rt;
  CpuModel cpu(rt, 4.0);
  auto profile = BackendLatencyProfile::crun();
  profile.snapshot_cold_starts = true;
  SimContainerBackend be(rt, cpu, Rng(1), profile);
  be.create_container(pyaes(), [](bool) {});
  rt.run();
  // A different function's first create is NOT a snapshot restore.
  be.create_container(function_bench_app("float_op"), [](bool) {});
  rt.run();
  EXPECT_EQ(be.snapshot_restores(), 0u);
}

TEST(SnapshotColdStarts, DisabledByDefault) {
  SimRuntime rt;
  CpuModel cpu(rt, 4.0);
  SimContainerBackend be(rt, cpu, Rng(1),
                         BackendLatencyProfile::containerd());
  be.create_container(pyaes(), [](bool) {});
  rt.run();
  be.create_container(pyaes(), [](bool) {});
  rt.run();
  EXPECT_EQ(be.snapshot_restores(), 0u);
}

// ---------- stretch-signal AIMD ----------

TEST(StretchAimd, DecreasesOnHighStretch) {
  RegulatorConfig cfg{.limit = 50.0, .dynamic = true};
  cfg.signal = CongestionSignal::Stretch;
  cfg.stretch_threshold = 2.0;
  ConcurrencyRegulator reg(cfg);
  reg.tick(/*normalized_load=*/0.1, /*recent_stretch=*/3.0);
  EXPECT_DOUBLE_EQ(reg.limit(), 35.0);
}

TEST(StretchAimd, IncreasesWhenStretchLow) {
  RegulatorConfig cfg{.limit = 50.0, .dynamic = true};
  cfg.signal = CongestionSignal::Stretch;
  ConcurrencyRegulator reg(cfg);
  // Load average says congested, but the stretch signal is in charge.
  reg.tick(/*normalized_load=*/5.0, /*recent_stretch=*/1.1);
  EXPECT_DOUBLE_EQ(reg.limit(), 51.0);
}

TEST(StretchAimd, LoadSignalIgnoresStretch) {
  RegulatorConfig cfg{.limit = 50.0, .dynamic = true};
  ConcurrencyRegulator reg(cfg);  // default LoadAverage signal
  reg.tick(/*normalized_load=*/0.5, /*recent_stretch=*/10.0);
  EXPECT_DOUBLE_EQ(reg.limit(), 51.0);
}

// ---------- energy meter ----------

TEST(EnergyMeter, IdleConsumesIdlePower) {
  EnergyMeter m(48.0);
  // No demand changes: 10 s at idle floor.
  EXPECT_NEAR(m.total_joules(secs(10)), 120.0 * 10.0, 1e-6);
  EXPECT_NEAR(m.active_joules(secs(10)), 0.0, 1e-6);
}

TEST(EnergyMeter, FullLoadConsumesMaxPower) {
  EnergyMeter m(48.0);
  m.on_demand_change(secs(0), 48.0);
  EXPECT_NEAR(m.total_joules(secs(10)), 420.0 * 10.0, 1e-6);
  EXPECT_NEAR(m.active_joules(secs(10)), 300.0 * 10.0, 1e-6);
}

TEST(EnergyMeter, PiecewiseIntegration) {
  EnergyMeter m(10.0, {.idle_watts = 100.0, .max_watts = 200.0});
  m.on_demand_change(secs(0), 5.0);   // 150 W for 4 s
  m.on_demand_change(secs(4), 10.0);  // 200 W for 6 s
  EXPECT_NEAR(m.total_joules(secs(10)), 150.0 * 4 + 200.0 * 6, 1e-6);
}

TEST(EnergyMeter, OvercommittedDemandClampsToMax) {
  EnergyMeter m(10.0, {.idle_watts = 100.0, .max_watts = 200.0});
  m.on_demand_change(secs(0), 50.0);  // 5x overcommit: still 200 W
  EXPECT_NEAR(m.total_joules(secs(2)), 400.0, 1e-6);
}

TEST(EnergyMeter, AverageWatts) {
  EnergyMeter m(10.0, {.idle_watts = 100.0, .max_watts = 200.0});
  m.on_demand_change(secs(0), 10.0);
  m.on_demand_change(secs(5), 0.0);
  EXPECT_NEAR(m.average_watts(secs(10)), 150.0, 1e-6);
}

TEST(EnergyMeter, IntegratesWithCpuModel) {
  SimRuntime rt;
  CpuModel cpu(rt, 4.0);
  EnergyMeter meter(4.0, {.idle_watts = 100.0, .max_watts = 300.0});
  cpu.set_demand_observer([&](TimePoint t, double demand) {
    meter.on_demand_change(t, demand);
  });
  // 4 cores fully busy for exactly 5 s.
  for (int i = 0; i < 4; ++i) cpu.submit(5.0, 1.0, [] {});
  rt.run_until(secs(10));
  // 5 s at 300 W + 5 s at 100 W.
  EXPECT_NEAR(meter.total_joules(secs(10)), 300.0 * 5 + 100.0 * 5, 1.0);
}

}  // namespace
}  // namespace ilu
