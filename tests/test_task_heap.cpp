// Unit tests for the discrete-event hot-path primitives: the
// small-buffer-optimized ilu::Task and the indexed d-ary heap with
// slab-recycled nodes (runtime/task.hpp, runtime/indexed_heap.hpp).

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <random>
#include <vector>

#include "runtime/indexed_heap.hpp"
#include "runtime/task.hpp"

namespace ilu {
namespace {

// ---------------------------------------------------------------- Task ----

TEST(Task, EmptyByDefault) {
  Task t;
  EXPECT_FALSE(static_cast<bool>(t));
  Task u(nullptr);
  EXPECT_FALSE(static_cast<bool>(u));
}

TEST(Task, SmallCaptureStoredInlineAndRuns) {
  int hits = 0;
  int* p = &hits;
  Task t([p] { ++*p; });
  ASSERT_TRUE(static_cast<bool>(t));
  EXPECT_TRUE(t.is_inline());
  t();
  EXPECT_EQ(hits, 1);
}

TEST(Task, CaptureAtInlineBoundaryStaysInline) {
  // 40 B of payload + 8 B pointer = 48 B: exactly the inline budget.
  std::array<std::uint64_t, 5> payload{1, 2, 3, 4, 5};
  std::uint64_t sum = 0;
  std::uint64_t* out = &sum;
  Task t([payload, out] {
    for (auto v : payload) *out += v;
  });
  EXPECT_TRUE(t.is_inline());
  t();
  EXPECT_EQ(sum, 15u);
}

TEST(Task, OversizedCaptureFallsBackToHeapAndRuns) {
  std::array<std::uint64_t, 16> payload{};
  payload[15] = 42;
  std::uint64_t got = 0;
  std::uint64_t* out = &got;
  Task t([payload, out] { *out = payload[15]; });
  EXPECT_FALSE(t.is_inline());
  t();
  EXPECT_EQ(got, 42u);
}

TEST(Task, MoveTransfersOwnership) {
  int hits = 0;
  int* p = &hits;
  Task a([p] { ++*p; });
  Task b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
  Task c;
  c = std::move(b);
  c();
  EXPECT_EQ(hits, 2);
}

struct DtorCounter {
  std::shared_ptr<int> alive;
  explicit DtorCounter(std::shared_ptr<int> a) : alive(std::move(a)) {
    ++*alive;
  }
  DtorCounter(const DtorCounter& o) : alive(o.alive) { ++*alive; }
  DtorCounter(DtorCounter&& o) noexcept : alive(o.alive) { ++*alive; }
  ~DtorCounter() { --*alive; }
  void operator()() const {}
};

TEST(Task, DestroysCaptureExactlyOnce) {
  auto alive = std::make_shared<int>(0);
  {
    Task t{DtorCounter(alive)};
    EXPECT_EQ(*alive, 1);
    Task u(std::move(t));
    EXPECT_EQ(*alive, 1);
    u.reset();
    EXPECT_EQ(*alive, 0);
  }
  EXPECT_EQ(*alive, 0);
}

TEST(Task, WrapsStdFunctionCopies) {
  int hits = 0;
  std::function<void()> fn = [&hits] { ++hits; };
  Task t(fn);  // copies the std::function into the task
  t();
  EXPECT_EQ(hits, 1);
}

// --------------------------------------------------------- IndexedHeap ----

using Heap = IndexedHeap<std::pair<std::int64_t, std::uint64_t>, int>;

TEST(IndexedHeap, PopsInKeyOrder) {
  Heap h;
  h.push({30, 0}, 3);
  h.push({10, 1}, 1);
  h.push({20, 2}, 2);
  EXPECT_EQ(h.size(), 3u);
  EXPECT_EQ(h.pop_min(), 1);
  EXPECT_EQ(h.pop_min(), 2);
  EXPECT_EQ(h.pop_min(), 3);
  EXPECT_TRUE(h.empty());
}

TEST(IndexedHeap, SequenceBreaksTies) {
  Heap h;
  for (int i = 0; i < 10; ++i) {
    h.push({5, static_cast<std::uint64_t>(i)}, i);
  }
  for (int i = 0; i < 10; ++i) EXPECT_EQ(h.pop_min(), i);
}

TEST(IndexedHeap, EraseRemovesAndReportsStaleHandles) {
  Heap h;
  auto a = h.push({10, 0}, 1);
  auto b = h.push({20, 1}, 2);
  auto c = h.push({30, 2}, 3);
  EXPECT_TRUE(h.contains(b));
  EXPECT_TRUE(h.erase(b));
  EXPECT_FALSE(h.erase(b));  // double erase
  EXPECT_FALSE(h.contains(b));
  EXPECT_EQ(h.size(), 2u);
  EXPECT_EQ(h.pop_min(), 1);
  EXPECT_FALSE(h.erase(a));  // erase after pop
  EXPECT_EQ(h.pop_min(), 3);
  EXPECT_FALSE(h.erase(c));
  EXPECT_TRUE(h.empty());
}

TEST(IndexedHeap, RecycledSlotsDoNotAliasOldHandles) {
  Heap h;
  auto a = h.push({10, 0}, 1);
  EXPECT_EQ(h.pop_min(), 1);
  // The new push reuses slot 0; the stale handle must not hit it.
  auto b = h.push({20, 1}, 2);
  EXPECT_FALSE(h.erase(a));
  EXPECT_EQ(h.size(), 1u);
  EXPECT_TRUE(h.erase(b));
  EXPECT_TRUE(h.empty());
}

TEST(IndexedHeap, PeekKeyTracksMinimum) {
  Heap h;
  EXPECT_EQ(h.peek_key(), nullptr);
  h.push({20, 0}, 2);
  ASSERT_NE(h.peek_key(), nullptr);
  EXPECT_EQ(h.peek_key()->first, 20);
  auto a = h.push({10, 1}, 1);
  EXPECT_EQ(h.peek_key()->first, 10);
  EXPECT_TRUE(h.erase(a));
  EXPECT_EQ(h.peek_key()->first, 20);
}

TEST(IndexedHeap, RandomizedAgainstReferenceModel) {
  // Interleave push / pop_min / erase and check every outcome against a
  // std::map reference (the previous InvocationQueue implementation).
  Heap h;
  std::map<std::pair<std::int64_t, std::uint64_t>, int> model;
  std::map<int, Heap::Handle> handles;  // value -> handle (values unique)
  std::mt19937_64 rng(7);
  std::uint64_t seq = 0;
  int next_value = 0;
  for (int step = 0; step < 20000; ++step) {
    ASSERT_EQ(h.size(), model.size());
    int op = static_cast<int>(rng() % 100);
    if (op < 55 || model.empty()) {
      std::pair<std::int64_t, std::uint64_t> key{
          static_cast<std::int64_t>(rng() % 1000), seq++};
      int v = next_value++;
      handles[v] = h.push(key, v);
      model[key] = v;
    } else if (op < 85) {
      auto it = model.begin();
      ASSERT_EQ(h.pop_min(), it->second);
      handles.erase(it->second);
      model.erase(it);
    } else {
      // Erase a random live entry through its handle.
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng() % model.size()));
      int v = it->second;
      ASSERT_TRUE(h.erase(handles[v]));
      ASSERT_FALSE(h.erase(handles[v]));
      handles.erase(v);
      model.erase(it);
    }
    if (!model.empty()) {
      ASSERT_NE(h.peek_key(), nullptr);
      ASSERT_EQ(*h.peek_key(), model.begin()->first);
    } else {
      ASSERT_EQ(h.peek_key(), nullptr);
    }
  }
  while (!model.empty()) {
    ASSERT_EQ(h.pop_min(), model.begin()->second);
    model.erase(model.begin());
  }
  EXPECT_TRUE(h.empty());
}

TEST(IndexedHeap, MoveOnlyValues) {
  IndexedHeap<int, std::unique_ptr<int>> h;
  h.push(2, std::make_unique<int>(20));
  auto a = h.push(1, std::make_unique<int>(10));
  auto stale = a;
  EXPECT_EQ(*h.pop_min(), 10);
  EXPECT_FALSE(h.erase(stale));
  EXPECT_EQ(*h.pop_min(), 20);
}

}  // namespace
}  // namespace ilu
