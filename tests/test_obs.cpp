// Observability layer: transaction-scoped tracer (span trees, shard merge,
// record caps), metrics registry (counters/gauges/histograms, snapshots),
// exporters (Chrome trace JSON, metrics JSON/CSV), pluggable log sink, and
// the periodic status-line reporter.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "iluvatar.hpp"

namespace ilu {
namespace {

// ---------------------------------------------------------------- tracer --

TEST(TransactionTracer, AssignsUniqueTransactionIds) {
  TransactionTracer t;
  EXPECT_NE(t.begin_transaction(), t.begin_transaction());
  EXPECT_NE(t.begin_transaction(), 0u);
}

TEST(TransactionTracer, RecordsSpanWithParentLink) {
  TransactionTracer t;
  TransactionId tx = t.begin_transaction();
  SpanId root = t.record(tx, "invoke", usecs(0), usecs(100));
  SpanId child = t.record(tx, "dequeue", usecs(10), usecs(20), root);
  EXPECT_NE(root, kNoSpan);
  EXPECT_NE(child, kNoSpan);

  auto spans = t.collect();
  ASSERT_EQ(spans.size(), 2u);
  // collect() sorts by start time: root first.
  EXPECT_EQ(spans[0].name, "invoke");
  EXPECT_EQ(spans[0].parent, kNoSpan);
  EXPECT_EQ(spans[1].name, "dequeue");
  EXPECT_EQ(spans[1].parent, root);
  EXPECT_EQ(spans[1].tx, tx);
}

TEST(TransactionTracer, DisabledTracerRecordsNothing) {
  TransactionTracer t(/*enabled=*/false);
  TransactionId tx = t.begin_transaction();
  EXPECT_EQ(t.record(tx, "invoke", usecs(0), usecs(1)), kNoSpan);
  t.record_aggregate("invoke", usecs(1));
  EXPECT_TRUE(t.collect().empty());
  EXPECT_TRUE(t.aggregate().empty());
}

TEST(TransactionTracer, ShardCapCountsDroppedRecords) {
  TransactionTracer t(/*enabled=*/true, /*max_records_per_shard=*/4);
  TransactionId tx = t.begin_transaction();
  for (int i = 0; i < 10; ++i) t.record(tx, "s", usecs(i), usecs(1));
  EXPECT_EQ(t.collect().size(), 4u);
  EXPECT_EQ(t.dropped_records(), 6u);
  // The aggregate view is not subject to the cap.
  auto agg = t.aggregate();
  ASSERT_TRUE(agg.count("s"));
  EXPECT_EQ(agg.at("s").count(), 10u);
}

TEST(TransactionTracer, ClearResetsRecordsAndAggregates) {
  TransactionTracer t;
  TransactionId tx = t.begin_transaction();
  t.record(tx, "a", usecs(0), usecs(5));
  t.record_aggregate("b", usecs(5));
  t.clear();
  EXPECT_TRUE(t.collect().empty());
  EXPECT_TRUE(t.aggregate().empty());
  EXPECT_EQ(t.dropped_records(), 0u);
  // Ids keep advancing after a clear.
  EXPECT_NE(t.record(tx, "a", usecs(0), usecs(5)), kNoSpan);
}

TEST(ScopedSpan, NestedScopesFormParentChildTree) {
  SimRuntime rt;
  TransactionTracer t;
  TransactionId tx = t.begin_transaction();
  SpanId outer_id, inner_id;
  {
    ScopedSpan outer(t, rt, tx, "outer");
    outer_id = outer.id();
    rt.run_for(msecs(3));
    {
      ScopedSpan inner(t, rt, tx, "inner");
      inner_id = inner.id();
      rt.run_for(msecs(1));
    }
    rt.run_for(msecs(2));
  }
  auto spans = t.collect();
  ASSERT_EQ(spans.size(), 2u);
  std::map<std::string, SpanRecord> by_name;
  for (auto& s : spans) by_name[s.name] = s;
  EXPECT_EQ(by_name.at("outer").id, outer_id);
  EXPECT_EQ(by_name.at("outer").parent, kNoSpan);
  EXPECT_EQ(by_name.at("inner").id, inner_id);
  EXPECT_EQ(by_name.at("inner").parent, outer_id);
  // Inner span is contained within the outer span's interval.
  EXPECT_GE(by_name.at("inner").start, by_name.at("outer").start);
  EXPECT_LE(by_name.at("inner").start + by_name.at("inner").dur,
            by_name.at("outer").start + by_name.at("outer").dur);
  EXPECT_EQ(by_name.at("outer").dur, msecs(6));
  EXPECT_EQ(by_name.at("inner").dur, msecs(1));
}

TEST(TransactionTracer, SpanTreeIntegrityUnderConcurrentRecording) {
  constexpr int kThreads = 8;
  constexpr int kTxPerThread = 200;
  constexpr int kChildrenPerTx = 3;
  TransactionTracer t;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&t] {
      for (int i = 0; i < kTxPerThread; ++i) {
        TransactionId tx = t.begin_transaction();
        SpanId root = t.record(tx, "invoke", usecs(0), usecs(10));
        for (int c = 0; c < kChildrenPerTx; ++c) {
          t.record(tx, "stage", usecs(1 + c), usecs(1), root);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  auto spans = t.collect();
  ASSERT_EQ(spans.size(),
            std::size_t(kThreads) * kTxPerThread * (1 + kChildrenPerTx));

  // Span ids are globally unique across shards.
  std::vector<SpanId> ids;
  ids.reserve(spans.size());
  for (auto& s : spans) ids.push_back(s.id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());

  // Every transaction forms a proper tree: exactly one root, every child's
  // parent is that root, and no span leaks into another transaction.
  std::map<TransactionId, std::vector<const SpanRecord*>> by_tx;
  for (auto& s : spans) by_tx[s.tx].push_back(&s);
  ASSERT_EQ(by_tx.size(), std::size_t(kThreads) * kTxPerThread);
  for (auto& [tx, group] : by_tx) {
    ASSERT_EQ(group.size(), std::size_t(1 + kChildrenPerTx));
    SpanId root = kNoSpan;
    for (auto* s : group) {
      if (s->parent == kNoSpan) {
        EXPECT_EQ(root, kNoSpan) << "two roots in tx " << tx;
        root = s->id;
      }
    }
    ASSERT_NE(root, kNoSpan);
    for (auto* s : group) {
      if (s->id != root) {
        EXPECT_EQ(s->parent, root);
      }
    }
  }

  // The merged aggregate agrees with the record counts.
  auto agg = t.aggregate();
  EXPECT_EQ(agg.at("invoke").count(), std::size_t(kThreads) * kTxPerThread);
  EXPECT_EQ(agg.at("stage").count(),
            std::size_t(kThreads) * kTxPerThread * kChildrenPerTx);
}

// --------------------------------------------------------------- metrics --

TEST(Metrics, CounterAndGaugeBasics) {
  Counter c;
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  Gauge g;
  g.set(7);
  g.add(3);
  g.sub(12);
  EXPECT_EQ(g.value(), -2);
}

TEST(Metrics, HistogramBucketBoundaries) {
  Histogram h(/*bucket_width=*/1.0, /*num_buckets=*/10);
  h.observe(0.0);    // bucket 0: [0, 1)
  h.observe(0.999);  // bucket 0
  h.observe(1.0);    // bucket 1: [1, 2)
  h.observe(9.0);    // bucket 9 (last in-range)
  h.observe(42.0);   // overflow -> last bucket
  h.observe(-3.0);   // negative -> first bucket
  EXPECT_EQ(h.bucket(0), 3u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(9), 2u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_NEAR(h.sum(), 0.0 + 0.999 + 1.0 + 9.0 + 42.0 - 3.0, 1e-4);
  EXPECT_NEAR(h.mean(), h.sum() / 6.0, 1e-9);
}

TEST(Metrics, HistogramQuantileUpperBound) {
  Histogram h(1.0, 10);
  EXPECT_EQ(h.quantile_upper_bound(0.5), 0.0);  // empty
  for (int i = 0; i < 90; ++i) h.observe(0.5);  // bucket 0
  for (int i = 0; i < 10; ++i) h.observe(5.5);  // bucket 5
  EXPECT_DOUBLE_EQ(h.quantile_upper_bound(0.5), 1.0);   // within bucket 0
  EXPECT_DOUBLE_EQ(h.quantile_upper_bound(0.99), 6.0);  // within bucket 5
}

TEST(Metrics, RegistryFindOrCreateReturnsStablePointers) {
  MetricsRegistry reg;
  Counter* c1 = reg.counter("x");
  Counter* c2 = reg.counter("x");
  EXPECT_EQ(c1, c2);
  Histogram* h1 = reg.histogram("h", 1.0, 4);
  Histogram* h2 = reg.histogram("h", 99.0, 7);  // existing geometry wins
  EXPECT_EQ(h1, h2);
  EXPECT_DOUBLE_EQ(h2->bucket_width(), 1.0);
}

TEST(Metrics, SnapshotJsonRoundTrip) {
  MetricsRegistry reg;
  reg.counter("invocations")->inc(42);
  reg.gauge("inflight")->set(-3);
  Histogram* h = reg.histogram("wait_ms", 2.0, 4);
  h->observe(1.0);
  h->observe(3.0);
  h->observe(100.0);

  MetricsSnapshot snap = reg.snapshot();
  JsonValue parsed = json_parse(metrics_json(snap).dump());

  EXPECT_DOUBLE_EQ(
      parsed.find("counters")->find("invocations")->as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parsed.find("gauges")->find("inflight")->as_number(),
                   -3.0);
  const JsonValue* hist = parsed.find("histograms")->find("wait_ms");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->find("bucket_width")->as_number(), 2.0);
  EXPECT_DOUBLE_EQ(hist->find("count")->as_number(), 3.0);
  const JsonArray& buckets = hist->find("buckets")->as_array();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_DOUBLE_EQ(buckets[0].as_number(), 1.0);  // 1.0 -> [0,2)
  EXPECT_DOUBLE_EQ(buckets[1].as_number(), 1.0);  // 3.0 -> [2,4)
  EXPECT_DOUBLE_EQ(buckets[3].as_number(), 1.0);  // 100 -> overflow
  EXPECT_NEAR(hist->find("sum")->as_number(), 104.0, 1e-4);
}

TEST(Metrics, CsvExportWrites) {
  MetricsRegistry reg;
  reg.counter("c")->inc(2);
  reg.gauge("g")->set(5);
  reg.histogram("h", 1.0, 4)->observe(0.5);
  std::string path = testing::TempDir() + "/obs_metrics.csv";
  write_metrics_csv(reg.snapshot(), path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("counter"), std::string::npos);
  EXPECT_NE(all.find("gauge"), std::string::npos);
  EXPECT_NE(all.find("histogram"), std::string::npos);
}

// ------------------------------------------------------------- exporters --

TEST(ChromeTrace, GoldenDocumentShape) {
  TransactionTracer t;
  TransactionId tx = t.begin_transaction();
  SpanId root = t.record(tx, "invoke", usecs(100), usecs(50));
  t.record(tx, "dequeue", usecs(110), usecs(10), root);
  TransactionId tx2 = t.begin_transaction();
  t.record(tx2, "invoke", usecs(500), usecs(40));

  JsonValue doc = json_parse(chrome_trace_json(t.collect(), /*pid=*/7));
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  const JsonArray& arr = events->as_array();
  ASSERT_EQ(arr.size(), 3u);

  double prev_ts = -1.0;
  for (const JsonValue& e : arr) {
    // Perfetto-required fields on every complete event.
    EXPECT_EQ(e.find("ph")->as_string(), "X");
    ASSERT_NE(e.find("name"), nullptr);
    ASSERT_NE(e.find("cat"), nullptr);
    ASSERT_NE(e.find("pid"), nullptr);
    ASSERT_NE(e.find("tid"), nullptr);
    EXPECT_DOUBLE_EQ(e.find("pid")->as_number(), 7.0);
    double ts = e.find("ts")->as_number();
    double dur = e.find("dur")->as_number();
    EXPECT_GE(ts, prev_ts) << "ts must be monotonic non-decreasing";
    EXPECT_GE(dur, 0.0);
    prev_ts = ts;
  }
  EXPECT_DOUBLE_EQ(arr[0].find("ts")->as_number(), 100.0);
  EXPECT_DOUBLE_EQ(arr[0].find("dur")->as_number(), 50.0);
}

TEST(ChromeTrace, WriteAndReparseFile) {
  TransactionTracer t;
  TransactionId tx = t.begin_transaction();
  t.record(tx, "invoke", usecs(1), usecs(2));
  std::string path = testing::TempDir() + "/obs_trace.json";
  write_chrome_trace(t.collect(), path);
  JsonValue doc = json_parse_file(path);
  EXPECT_EQ(doc.find("traceEvents")->as_array().size(), 1u);
}

// ------------------------------------------------------------------- log --

TEST(Log, PluggableSinkCapturesAndRestores) {
  std::ostringstream oss;
  set_log_sink(&oss);
  LogLevel before = log_level();
  set_log_level(LogLevel::Info);
  log_info("hello ", 42);
  log_debug("invisible at info level");
  set_log_level(before);
  set_log_sink(nullptr);
  EXPECT_NE(oss.str().find("[INFO] hello 42"), std::string::npos);
  EXPECT_EQ(oss.str().find("invisible"), std::string::npos);
}

// -------------------------------------------------------- status reporter --

TEST(StatusLineReporter, EmitsPeriodicallyUnderSimTime) {
  SimRuntime rt;
  std::ostringstream oss;
  int calls = 0;
  StatusLineReporter rep(
      rt, secs(1), [&] { return "tick " + std::to_string(++calls); }, &oss);
  rep.start();
  rt.run_for(secs(5) + msecs(1));
  rep.stop();
  rt.run_for(secs(5));  // no further emissions after stop
  EXPECT_EQ(rep.emitted(), 5u);
  EXPECT_NE(oss.str().find("tick 1"), std::string::npos);
  EXPECT_NE(oss.str().find("tick 5"), std::string::npos);
  EXPECT_EQ(oss.str().find("tick 6"), std::string::npos);
}

// --------------------------------------------------- worker integration --

TEST(WorkerObservability, InvocationsBuildSpanTreesAndMetrics) {
  SimRuntime rt;
  WorkerConfig cfg;
  Worker w(rt, cfg);
  auto fn = w.register_function(FunctionProfile{
      .name = "f", .mem_mb = 128, .warm_time = msecs(10),
      .init_time = msecs(100)});
  w.start();
  int done = 0;
  std::function<void(int)> chain = [&](int remaining) {
    if (remaining == 0) return;
    w.invoke(fn, [&, remaining](const InvokeResult& r) {
      EXPECT_TRUE(r.success);
      ++done;
      chain(remaining - 1);
    });
  };
  chain(3);
  while (done < 3) rt.run_for(secs(1));
  w.shutdown();

  // Every span belongs to a transaction and each transaction has one root.
  auto spans = w.tracer().spans();
  ASSERT_FALSE(spans.empty());
  std::map<TransactionId, int> roots;
  for (const auto& s : spans) {
    EXPECT_NE(s.tx, 0u);
    if (s.parent == kNoSpan) ++roots[s.tx];
  }
  ASSERT_EQ(roots.size(), 3u);
  for (auto& [tx, n] : roots) EXPECT_EQ(n, 1) << "tx " << tx;

  // Metrics agree with the worker's own counters.
  auto snap = w.metrics().snapshot();
  EXPECT_EQ(snap.counters.at("worker.invocations"), 3u);
  EXPECT_EQ(snap.counters.at("worker.completed"), 3u);
  EXPECT_EQ(snap.counters.at("worker.cold_starts"), 1u);
  EXPECT_EQ(snap.counters.at("worker.warm_starts"), 2u);
  EXPECT_EQ(snap.gauges.at("worker.inflight"), 0);
  EXPECT_EQ(snap.log_histograms.at("worker.overhead_ms").count, 3u);
}

}  // namespace
}  // namespace ilu
