// Fixture: std-function-hotpath must fire on std::function in a hot-path
// header (the test lints this under queueing/, runtime/, and core/).
#pragma once

#include <functional>

struct FixtureQueueSlot {
  std::function<void()> dispatch;          // finding
  using Callback = std::function<int()>;   // finding
};
