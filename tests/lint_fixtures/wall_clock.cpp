// Fixture: wall-clock must fire on ambient time/entropy reads.
#include <chrono>
#include <random>

long fixture_wall_clock() {
  auto a = std::chrono::steady_clock::now();   // finding
  auto b = std::chrono::system_clock::now();   // finding
  std::random_device rd;                       // finding
  long t = time(nullptr);                      // finding
  return a.time_since_epoch().count() + b.time_since_epoch().count() +
         static_cast<long>(rd()) + t;
}
