// Fixture: unordered-iter must fire on iteration over unordered containers.
#include <unordered_map>
#include <unordered_set>

int fixture_unordered_iter() {
  std::unordered_map<int, int> counts;
  std::unordered_set<int> seen;
  using Index = std::unordered_map<long, long>;
  Index index;
  int sum = 0;
  for (auto& kv : counts) sum += kv.second;        // finding (range-for)
  for (const int& v : seen) sum += v;              // finding (range-for)
  for (auto it = index.begin(); it != index.end(); ++it) {  // finding (.begin)
    sum += static_cast<int>(it->second);
  }
  return sum + static_cast<int>(counts.count(0));  // lookups stay legal
}
