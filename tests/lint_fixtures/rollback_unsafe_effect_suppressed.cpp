// Fixture: both bufferable channels declared, log sites individually
// allowed — the whole file must lint clean.
// ilu-lint: speculative-zone(flight, metrics) - ring is rewound and registry values restored per window
#include <cstdio>

namespace fix {

struct Counter {
  void inc();
};
struct Gauge {
  void set(long v);
};
namespace flight {
void record(int at, int ev, int arg);
}

void log_info(const char* msg, int v);

struct W {
  Counter* completions_;
  Gauge* inflight_;

  void on_complete(int fn) {
    flight::record(1, 2, fn);
    completions_->inc();
    inflight_->set(3);
    // ilu-lint: allow(rollback-unsafe-effect) - debug aid behind a flag the sim never sets
    log_info("done ", fn);
    // ilu-lint: allow(rollback-unsafe-effect) - ditto
    std::printf("done %d\n", fn);
  }
};

}  // namespace fix
