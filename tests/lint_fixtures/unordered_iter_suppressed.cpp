// Fixture: order-independent folds over unordered containers are legal when
// annotated with the reason why the order cannot escape.
#include <unordered_map>

int fixture_unordered_iter_suppressed() {
  std::unordered_map<int, int> counts;
  int sum = 0;
  // ilu-lint: allow(unordered-iter) - commutative sum, order cannot escape
  for (auto& kv : counts) sum += kv.second;
  return sum;
}
