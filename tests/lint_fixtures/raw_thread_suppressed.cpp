// Fixture: a reasoned allow() covering several checks in one annotation.
// ilu-lint: atomics-floor(seq_cst) - fixture: implicit seq_cst ops only
#include <atomic>

int fixture_raw_thread_suppressed() {
  // ilu-lint: allow(raw-thread,wall-clock) - fixture for the multi-check suppression form
  std::atomic<int> counter{0};
  return counter.load();
}
