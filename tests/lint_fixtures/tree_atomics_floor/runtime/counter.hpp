// Fixture: a concurrency-zone file whose declared floor is acquire but
// whose publish store is relaxed — the store must be flagged.
// ilu-lint: atomics-floor(acquire) - fixture: publication ordering floor
#pragma once

#include <atomic>
#include <cstdint>

struct PubSlot {
  std::uint64_t read() const {
    return head_.load(std::memory_order_acquire);
  }
  void publish(std::uint64_t v) {
    head_.store(v, std::memory_order_relaxed);
  }
  std::atomic<std::uint64_t> head_{0};
};
