// Fixture: a concurrency-zone file with atomic traffic and no declared
// floor — one "declare your floor" finding, at the first op.
#pragma once

#include <atomic>

struct Tally {
  void bump() { n_.fetch_add(1); }
  std::atomic<int> n_{0};
};
