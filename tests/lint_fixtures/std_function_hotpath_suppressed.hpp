// Fixture: std::function survives in a hot-path header only with a reason
// (argument-taking or copyable callbacks that Task cannot express).
#pragma once

#include <functional>

struct FixtureObserverSlot {
  // ilu-lint: allow(std-function-hotpath) - takes an argument; installed once, not per event
  std::function<void(int)> observer;
};
