// Fixture: raw-thread must fire on concurrency primitives in sim code.
#include <atomic>
#include <mutex>
#include <thread>

int fixture_raw_thread() {
  std::atomic<int> counter{0};             // finding
  std::mutex mu;                           // finding
  std::thread worker([&] { counter.fetch_add(1); });  // finding
  {
    std::lock_guard<std::mutex> lk(mu);    // finding (std::mutex template arg)
  }
  worker.join();
  return counter.load();
}
