// Fixture: the annotated-allow tier (exp/live_load.*). Wall-clock reads are
// tolerated here, but only when every site carries a reasoned per-site
// annotation — the shape the real harness uses for its completion watchdog.
#include <chrono>

long fixture_wall_clock_live_harness() {
  // ilu-lint: allow(wall-clock) - watchdog deadline must be independent of the runtime under test
  auto deadline = std::chrono::steady_clock::now();
  // ilu-lint: allow(wall-clock) - watchdog poll against the deadline above
  auto t = std::chrono::steady_clock::now();
  return (deadline - t).count();
}
