// Fixture: half of a cross-TU lock-order inversion. alpha_entry holds the
// alpha mutex and calls into beta.cpp, which acquires the beta mutex; the
// other TU does the reverse.
#include <mutex>

std::mutex g_alpha_mu;

void beta_leaf();

void alpha_entry() {
  std::lock_guard<std::mutex> lk(g_alpha_mu);
  beta_leaf();
}

void alpha_leaf() {
  std::lock_guard<std::mutex> lk(g_alpha_mu);
}
