// Fixture: the other half — beta_entry holds the beta mutex and calls back
// into alpha.cpp, which acquires the alpha mutex. Neither TU alone has a
// cycle; only the whole-repo lock graph sees both orders.
#include <mutex>

std::mutex g_beta_mu;

void alpha_leaf();

void beta_entry() {
  std::lock_guard<std::mutex> lk(g_beta_mu);
  alpha_leaf();
}

void beta_leaf() {
  std::lock_guard<std::mutex> lk(g_beta_mu);
}
