// Fixture: container growth while a member mutex is held.
#include <mutex>
#include <vector>

struct Pool {
  void add(int v) {
    std::lock_guard<std::mutex> lk(mu_);
    items_.push_back(v);
  }
  std::mutex mu_;
  std::vector<int> items_;
};
