// Fixture: storing ref-capturing jobs is legal when the annotation explains
// why the captures outlive them (here: the runner joins inside the scope).
#include <functional>
#include <vector>

void fixture_const_ref_capture_suppressed(
    std::vector<std::function<int()>>& jobs) {
  int shared = 1;
  // ilu-lint: allow(const-ref-capture) - jobs are joined before scope exit
  jobs.emplace_back([&shared] { return shared; });
}
