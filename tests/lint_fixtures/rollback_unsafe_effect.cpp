// Fixture: a speculative-zone file that declares only the flight channel.
// Metric mutations and log output must fire; flight records stay clean.
// ilu-lint: speculative-zone(flight) - recorder is mark()/rewind() bracketed
#include <cstdio>

namespace fix {

struct Counter {
  void inc();
};
struct Gauge {
  void set(long v);
};
namespace flight {
void record(int at, int ev, int arg);
}

void log_info(const char* msg, int v);

struct W {
  Counter* completions_;
  Gauge* inflight_;

  void on_complete(int fn) {
    flight::record(1, 2, fn);      // declared channel: clean
    completions_->inc();           // finding: metrics undeclared
    inflight_->set(3);             // finding: metrics undeclared
    log_info("done ", fn);         // finding: log is never declarable
    std::printf("done %d\n", fn);  // finding: log is never declarable
  }

  void value_call() {
    Gauge g;
    g.set(1);  // not an instrument pointer mutation: clean
  }
};

}  // namespace fix
