// Fixture: malformed suppressions are themselves findings (and do NOT
// suppress anything).
#include <chrono>

long fixture_bad_suppression() {
  // ilu-lint: allow(wall-clock)
  auto a = std::chrono::steady_clock::now();  // still a finding: no reason given
  // ilu-lint: allow(no-such-check) - unknown check names are rejected
  auto b = std::chrono::system_clock::now();
  return a.time_since_epoch().count() + b.time_since_epoch().count();
}
