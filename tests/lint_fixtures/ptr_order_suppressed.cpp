// Fixture: pointer-keyed sets are legal when the order never escapes (e.g. a
// membership-only registry) and the annotation says so.
#include <set>

struct Node {};

int fixture_ptr_order_suppressed() {
  // ilu-lint: allow(ptr-order) - membership test only, never iterated
  std::set<Node*> registry;
  return static_cast<int>(registry.size());
}
