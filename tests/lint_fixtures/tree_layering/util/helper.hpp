// Fixture: a layering back-edge — util (layer 0) reaching up into core
// (layer 5).
#pragma once

#include "core/engine.hpp"

inline int util_helper() { return core_engine_value(); }
