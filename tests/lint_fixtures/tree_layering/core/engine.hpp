// Fixture: one side of an include cycle inside core/.
#pragma once

#include "core/other.hpp"

inline int core_engine_value() { return 1; }
