// Fixture: the other side of the include cycle.
#pragma once

#include "core/engine.hpp"

inline int core_other_value() { return 2; }
