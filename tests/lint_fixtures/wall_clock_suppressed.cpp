// Fixture: identical violations, every one carrying a reasoned allow().
#include <chrono>

long fixture_wall_clock_suppressed() {
  // ilu-lint: allow(wall-clock) - fixture exercising the suppression path
  auto a = std::chrono::steady_clock::now();
  auto b = std::chrono::system_clock::now();  // ilu-lint: allow(wall-clock) - same-line suppression form
  return a.time_since_epoch().count() + b.time_since_epoch().count();
}
