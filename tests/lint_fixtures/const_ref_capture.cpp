// Fixture: const-ref-capture must fire on by-reference lambda captures that
// escape the scope owning the captures — returned, handed to a deferring
// callee, or stored in a container — and stay quiet on value captures,
// immediately-invoked lambdas, and synchronous algorithm callbacks.
#include <algorithm>
#include <functional>
#include <vector>

struct FakeRuntime {
  template <typename F>
  void schedule(int delay, F fn);
  template <typename F>
  void post(F fn);
};

std::function<int()> fixture_returned_ref() {
  int local = 1;
  return [&local] { return local; };  // finding: returned
}

void fixture_deferred_ref(FakeRuntime& rt) {
  int local = 2;
  rt.schedule(5, [&local] { local = 3; });  // finding: deferred
  rt.post([&] { local = 4; });              // finding: deferred
  rt.schedule(5, [local] { (void)local; }); // no finding (value capture)
  rt.post([p = &local] { *p = 5; });        // no finding (& is address-of)
}

void fixture_stored_ref(std::vector<std::function<int()>>& sink) {
  int local = 6;
  sink.push_back([&] { return local; });          // finding: stored
  sink.emplace_back([&local] { return local; });  // finding: stored
  sink.push_back([local] { return local; });      // no finding
}

int fixture_local_use_is_fine(std::vector<int>& v) {
  int bound = 7;
  // Synchronous callee: the lambda dies before the scope does.
  std::sort(v.begin(), v.end(),
            [&bound](int a, int b) { return (a % bound) < (b % bound); });
  int arr[2] = {1, 2};
  int sub = arr[0];  // subscript, not a lambda introducer
  // Immediately-invoked initializer, a common config-builder idiom here.
  int cfg = [&] { return bound + sub; }();
  return cfg;
}
