// Fixture: registry-lookup-hotpath — MetricsRegistry name lookups inside
// lambda bodies (event callbacks) instead of wiring-time resolution.

struct Counter {
  void inc();
};
struct Gauge {
  void set(double);
};
struct Hist {
  void observe(double);
};
struct Registry {
  Counter* counter(const char* name);
  Gauge* gauge(const char* name);
  Hist* histogram(const char* name);
  Hist* log_histogram(const char* name);
};

template <typename F>
void run(F f) {
  f();
}
template <typename F>
void each(F f) {
  f(0);
}

void wire(Registry& reg, const char* dynamic_name) {
  // OK: resolved once at wiring time, pointer captured into the callback.
  Counter* hits = reg.counter("pool.hits");
  run([hits] { hits->inc(); });

  // OK: lookup by a runtime-computed name is a different pattern (panel
  // construction), not a per-event literal lookup.
  run([&reg, dynamic_name] { reg.counter(dynamic_name)->inc(); });

  // BAD: one registry mutex acquisition per event, four flavours.
  run([&reg] { reg.counter("pool.hits")->inc(); });
  run([&reg] { reg.gauge("pool.mb")->set(1.0); });
  each([&reg](int) { reg.histogram("lat_ms")->observe(0.5); });
  run([&reg]() mutable { reg.log_histogram("wait_ms")->observe(2.0); });
}
