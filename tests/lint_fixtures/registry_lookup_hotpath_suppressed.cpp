// Fixture: registry-lookup-hotpath findings silenced by reasoned allow().

struct Counter {
  void inc();
};
struct Registry {
  Counter* counter(const char* name);
};

template <typename F>
void run(F f) {
  f();
}

void wire(Registry& reg) {
  run([&reg] {
    // ilu-lint: allow(registry-lookup-hotpath) - cold startup probe, fires once
    reg.counter("boot.probes")->inc();
  });
  // ilu-lint: allow(registry-lookup-hotpath) - shutdown path, not per-event
  run([&reg] { reg.counter("shutdown.flush")->inc(); });
}
