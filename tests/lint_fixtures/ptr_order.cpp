// Fixture: ptr-order must fire on ordered containers keyed by raw pointers
// (addresses vary run to run, so iteration order escapes determinism).
#include <map>
#include <set>

struct Node {};

int fixture_ptr_order() {
  std::set<Node*> by_addr;                 // finding
  std::map<const Node*, int> weights;      // finding
  std::multiset<int*> multi;               // finding
  std::set<int> fine_by_value;             // no finding
  std::map<long, Node*> ptr_values_ok;     // no finding (pointer is mapped value)
  return static_cast<int>(by_addr.size() + weights.size() + multi.size() +
                          fine_by_value.size() + ptr_values_ok.size());
}
