#include "keepalive/provisioner.hpp"

#include <gtest/gtest.h>

#include "core/worker.hpp"
#include "keepalive/policy.hpp"
#include "runtime/sim_runtime.hpp"
#include "trace/azure.hpp"
#include "trace/function_profile.hpp"
#include "trace/loadgen.hpp"

namespace ilu {
namespace {

TEST(Provisioner, GrowsUnderMissPressure) {
  LruPolicy policy;
  KeepAliveCache cache(policy, {.capacity_mb = 2048},
                       {lookbusy(secs(1), 100, secs(1))});
  ProvisionerConfig cfg;
  cfg.initial_capacity_mb = 2048;
  cfg.target_miss_rate = 0.001;
  cfg.interval = mins(1);
  cfg.window = mins(5);
  Provisioner prov(cache, cfg);
  // 1 miss per second — far above target.
  for (int i = 0; i < 600; ++i) prov.record_miss(secs(i));
  prov.maybe_adjust(secs(600));
  EXPECT_GT(cache.capacity_mb(), 2048u);
}

TEST(Provisioner, ShrinksWhenMissesAreRare) {
  LruPolicy policy;
  KeepAliveCache cache(policy, {.capacity_mb = 8192},
                       {lookbusy(secs(1), 100, secs(1))});
  ProvisionerConfig cfg;
  cfg.initial_capacity_mb = 8192;
  cfg.target_miss_rate = 0.1;
  cfg.interval = mins(1);
  Provisioner prov(cache, cfg);
  // No misses at all.
  prov.maybe_adjust(mins(30));
  EXPECT_LT(cache.capacity_mb(), 8192u);
}

TEST(Provisioner, DeadbandPreventsSmallAdjustments) {
  LruPolicy policy;
  KeepAliveCache cache(policy, {.capacity_mb = 4096},
                       {lookbusy(secs(1), 100, secs(1))});
  ProvisionerConfig cfg;
  cfg.initial_capacity_mb = 4096;
  cfg.target_miss_rate = 0.01;  // = 0.6 misses/min
  cfg.error_tolerance = 0.5;
  // Evaluate only once a full window of data exists, so the measured rate
  // is the steady 0.0117/s (inside the 50% deadband).
  cfg.interval = mins(10);
  cfg.window = mins(10);
  Provisioner prov(cache, cfg);
  for (int i = 0; i < 7; ++i) prov.record_miss(mins(10.0 * i / 7.0));
  prov.maybe_adjust(mins(10));
  for (const auto& s : prov.samples()) EXPECT_FALSE(s.resized);
  EXPECT_EQ(cache.capacity_mb(), 4096u);
}

TEST(Provisioner, RespectsMinMaxClamp) {
  LruPolicy policy;
  KeepAliveCache cache(policy, {.capacity_mb = 2048},
                       {lookbusy(secs(1), 100, secs(1))});
  ProvisionerConfig cfg;
  cfg.initial_capacity_mb = 2048;
  cfg.min_capacity_mb = 1024;
  cfg.max_capacity_mb = 4096;
  cfg.target_miss_rate = 1000.0;  // never reached -> always shrink
  cfg.interval = mins(1);
  Provisioner prov(cache, cfg);
  prov.maybe_adjust(mins(600));
  EXPECT_EQ(cache.capacity_mb(), 1024u);
}

TEST(Provisioner, SamplesRecordTimeseries) {
  LruPolicy policy;
  KeepAliveCache cache(policy, {.capacity_mb = 2048},
                       {lookbusy(secs(1), 100, secs(1))});
  ProvisionerConfig cfg;
  cfg.interval = mins(2);
  cfg.initial_capacity_mb = 2048;
  Provisioner prov(cache, cfg);
  prov.maybe_adjust(mins(10));
  EXPECT_EQ(prov.samples().size(), 5u);
  EXPECT_EQ(prov.samples()[0].at, mins(2));
  EXPECT_EQ(prov.samples()[4].at, mins(10));
}

TEST(DynamicProvisioning, EndToEndReducesAverageCapacity) {
  AzureModelConfig mcfg;
  mcfg.population = 600;
  mcfg.days = 0.15;
  mcfg.seed = 17;
  AzureTraceModel model(mcfg);
  auto trace = model.sample_representative(60, /*target_rps=*/3.0);

  ProvisionerConfig cfg;
  cfg.initial_capacity_mb = 10000;
  cfg.target_miss_rate = 0.01;
  auto r = run_dynamic_provisioning(trace, "GD", cfg);
  EXPECT_FALSE(r.timeseries.empty());
  EXPECT_EQ(r.static_capacity_mb, 10000u);
  // The controller should not sit at the static size the whole time.
  EXPECT_NE(r.average_capacity_mb, 10000.0);
  EXPECT_GT(r.stats.invocations, 0u);
}

TEST(Provisioner, DrivesWorkerPoolThroughCapacityTarget) {
  // The controller can resize a *live worker's* container pool, not just
  // the lean cache: vertical scaling on the full control plane.
  SimRuntime rt;
  WorkerConfig wcfg;
  wcfg.cores = 8;
  wcfg.memory_mb = 8192;
  Worker w(rt, wcfg);
  auto fn = w.register_function(pyaes());
  w.start();

  ProvisionerConfig cfg;
  cfg.initial_capacity_mb = 8192;
  cfg.target_miss_rate = 10.0;  // unreachable -> controller shrinks
  cfg.interval = mins(1);
  cfg.min_capacity_mb = 512;
  CapacityOf<ContainerPool> target(w.pool());
  Provisioner prov(target, cfg);
  EXPECT_EQ(w.pool().capacity_mb(), 8192u);

  bool done = false;
  w.invoke(fn, [&](const InvokeResult&) { done = true; });
  rt.run_for(mins(1));
  ASSERT_TRUE(done);
  prov.maybe_adjust(mins(30));
  EXPECT_LT(w.pool().capacity_mb(), 8192u);
  // The worker keeps functioning at the reduced size.
  done = false;
  w.invoke(fn, [&](const InvokeResult& r) {
    done = true;
    EXPECT_TRUE(r.success);
  });
  rt.run_for(mins(1));
  EXPECT_TRUE(done);
  w.shutdown();
}

TEST(DynamicProvisioning, MissRateTracksTowardTarget) {
  // Steady periodic workload: controller should settle the miss speed near
  // target rather than at extremes.
  std::vector<SyntheticFunctionSpec> specs;
  for (int i = 0; i < 40; ++i) {
    specs.push_back({.profile = lookbusy(secs(1), 150, secs(2)),
                     .mean_iat = mins(11),
                     .exponential = false,
                     .phase = secs(i * 15.0)});
  }
  auto trace = make_synthetic_trace(specs, mins(360));
  ProvisionerConfig cfg;
  cfg.initial_capacity_mb = 10000;
  cfg.target_miss_rate = 0.003;
  cfg.min_capacity_mb = 512;
  auto r = run_dynamic_provisioning(trace, "GD", cfg);
  // Average miss rate over the second half of the run.
  double avg = 0.0;
  std::size_t n = 0;
  for (std::size_t i = r.timeseries.size() / 2; i < r.timeseries.size();
       ++i) {
    avg += r.timeseries[i].miss_rate;
    ++n;
  }
  avg /= static_cast<double>(n);
  EXPECT_LT(avg, 0.05);  // nowhere near uncontrolled cold-start storms
}

}  // namespace
}  // namespace ilu
