// End-to-end determinism of the time-parallel cluster: with a fixed seed,
// the sharded simulation must produce a byte-identical ExperimentReport to
// the serial (1-shard) run at ANY shard count — the ISSUE's hard
// requirement for trusting parallel results.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lb/cluster.hpp"
#include "metrics/report.hpp"
#include "trace/azure.hpp"
#include "trace/loadgen.hpp"

namespace ilu {
namespace {

TraceArena small_cluster_arena() {
  AzureModelConfig cfg;
  cfg.population = 1500;
  cfg.days = 0.05;
  cfg.seed = 77;
  // Short functions keep the test fast.
  cfg.dur_median_s = 0.3;
  cfg.dur_sigma = 1.2;
  cfg.max_dur_s = 5.0;
  cfg.min_init_s = 0.05;
  cfg.max_init_s = 2.0;
  AzureTraceModel model(cfg);
  return model.sample_random_arena(40, /*target_rps=*/3.0);
}

struct RunResult {
  std::string report_json;
  std::vector<std::uint64_t> routed;
  std::uint64_t forwarded = 0;
  std::uint64_t warm = 0;
  std::uint64_t cold = 0;
  std::uint64_t windows = 0;
};

RunResult run_cluster(std::size_t shards, const TraceArena& arena,
                      LbPolicy lb) {
  ClusterConfig cfg;
  cfg.num_workers = 4;
  cfg.lb = lb;
  cfg.worker.cores = 8;
  cfg.worker.memory_mb = 8 * 1024;

  ShardedRuntime srt(shards, cfg.rpc.lower_bound());
  Cluster cluster(srt, cfg);
  for (const auto& f : arena.functions) cluster.register_function(f);
  cluster.start();

  OpenLoopDriver d(srt.shard(0),
                   [&](FunctionId fn,
                       std::function<void(const InvokeResult&)> cb) {
                     cluster.invoke(fn, std::move(cb));
                   });
  d.start(arena);
  while (!d.done()) srt.run_for(secs(30));
  cluster.shutdown();

  std::vector<std::string> names;
  for (const auto& f : arena.functions) names.push_back(f.name);
  ExperimentReport rep(std::move(names));
  rep.add_all(d.results());

  RunResult out;
  out.report_json = rep.to_json().dump();
  out.routed = cluster.routed();
  out.forwarded = cluster.forwarded();
  for (std::size_t i = 0; i < cluster.num_workers(); ++i) {
    out.warm += cluster.worker(i).warm_starts();
    out.cold += cluster.worker(i).cold_starts();
  }
  out.windows = srt.windows();
  return out;
}

TEST(ShardedCluster, ReportsByteIdenticalAtAnyShardCount) {
  auto arena = small_cluster_arena();
  auto serial = run_cluster(1, arena, LbPolicy::ChBl);
  ASSERT_FALSE(serial.report_json.empty());
  EXPECT_EQ(serial.windows, 0u);  // 1 shard takes the fast path

  for (std::size_t shards : {2u, 4u}) {
    auto sharded = run_cluster(shards, arena, LbPolicy::ChBl);
    EXPECT_EQ(sharded.report_json, serial.report_json)
        << "report diverged at " << shards << " shards";
    EXPECT_EQ(sharded.routed, serial.routed);
    EXPECT_EQ(sharded.forwarded, serial.forwarded);
    EXPECT_EQ(sharded.warm, serial.warm);
    EXPECT_EQ(sharded.cold, serial.cold);
    EXPECT_GT(sharded.windows, 0u);
  }
}

TEST(ShardedCluster, EquivalenceHoldsForEveryPolicy) {
  auto arena = small_cluster_arena();
  for (LbPolicy lb :
       {LbPolicy::ChBl, LbPolicy::RoundRobin, LbPolicy::LeastLoaded}) {
    auto serial = run_cluster(1, arena, lb);
    auto sharded = run_cluster(3, arena, lb);
    EXPECT_EQ(sharded.report_json, serial.report_json);
    EXPECT_EQ(sharded.routed, serial.routed);
  }
}

TEST(ShardedCluster, LegacySingleRuntimeStillWorks) {
  auto arena = small_cluster_arena();
  auto trace = arena.to_trace();

  SimRuntime rt;
  ClusterConfig cfg;
  cfg.num_workers = 4;
  cfg.worker.cores = 8;
  cfg.worker.memory_mb = 8 * 1024;
  Cluster cluster(rt, cfg);
  for (const auto& f : trace.functions) cluster.register_function(f);
  cluster.start();
  OpenLoopDriver d(rt, [&](FunctionId fn,
                           std::function<void(const InvokeResult&)> cb) {
    cluster.invoke(fn, std::move(cb));
  });
  d.start(trace);
  while (!d.done()) rt.run_for(secs(30));
  cluster.shutdown();
  EXPECT_EQ(d.results().size(), trace.events.size());
}

}  // namespace
}  // namespace ilu
