#include "metrics/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "util/csv.hpp"

namespace ilu {
namespace {

InvokeResult result(FunctionId fn, bool cold, double exec_ms,
                    double overhead_ms, TimePoint submitted = {}) {
  InvokeResult r;
  r.success = true;
  r.cold = cold;
  r.fn = fn;
  r.submitted = submitted;
  r.exec_time = msecs(exec_ms);
  r.exec_started = submitted + msecs(overhead_ms / 2);
  r.completed = submitted + msecs(exec_ms + overhead_ms);
  return r;
}

InvokeResult dropped(FunctionId fn) {
  InvokeResult r;
  r.dropped = true;
  r.fn = fn;
  return r;
}

InvokeResult failed(FunctionId fn) {
  InvokeResult r;
  r.success = false;
  r.fn = fn;
  return r;
}

TEST(Report, CountsByOutcome) {
  ExperimentReport rep({"alpha", "beta"});
  rep.add(result(0, true, 1000, 500));
  rep.add(result(0, false, 300, 2));
  rep.add(result(1, false, 50, 1));
  rep.add(dropped(1));
  rep.add(failed(0));

  const auto* a = rep.function(0);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->name, "alpha");
  EXPECT_EQ(a->invocations, 3u);
  EXPECT_EQ(a->warm, 1u);
  EXPECT_EQ(a->cold, 1u);
  EXPECT_EQ(a->failed, 1u);

  const auto& g = rep.global();
  EXPECT_EQ(g.invocations, 5u);
  EXPECT_EQ(g.warm, 2u);
  EXPECT_EQ(g.cold, 1u);
  EXPECT_EQ(g.dropped, 1u);
  EXPECT_EQ(g.failed, 1u);
}

TEST(Report, WarmRatioAndStretch) {
  ExperimentReport rep;
  rep.add(result(3, false, 100, 100));  // stretch 2.0
  rep.add(result(3, false, 100, 0));    // stretch 1.0
  rep.add(result(3, true, 100, 300));   // stretch 4.0
  const auto* fr = rep.function(3);
  ASSERT_NE(fr, nullptr);
  EXPECT_NEAR(fr->warm_ratio(), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(fr->mean_stretch(), (2.0 + 1.0 + 4.0) / 3.0, 1e-9);
}

TEST(Report, PercentilesComputed) {
  ExperimentReport rep;
  for (int i = 1; i <= 100; ++i) {
    rep.add(result(0, false, i, 1));
  }
  const auto* fr = rep.function(0);
  EXPECT_NEAR(fr->exec_ms.p50(), 50.5, 1e-9);
  EXPECT_NEAR(fr->flow_ms.p99(), 100.01, 0.1);
}

TEST(Report, UnnamedFunctionGetsGeneratedLabel) {
  ExperimentReport rep({"only_one"});
  rep.add(result(7, false, 10, 1));
  EXPECT_EQ(rep.function(7)->name, "fn_7");
}

TEST(Report, FormatContainsRows) {
  ExperimentReport rep({"fmt_fn"});
  rep.add(result(0, false, 10, 1));
  auto s = rep.format();
  EXPECT_NE(s.find("fmt_fn"), std::string::npos);
  EXPECT_NE(s.find("TOTAL"), std::string::npos);
}

TEST(Report, CsvRoundTripStructure) {
  ExperimentReport rep({"a", "b"});
  rep.add(result(0, false, 10, 1));
  rep.add(result(1, true, 400, 600));
  auto path = (std::filesystem::temp_directory_path() / "ilu_report.csv")
                  .string();
  rep.write_csv(path);
  CsvReader r(path);
  std::vector<std::string> row;
  ASSERT_TRUE(r.next(row));  // header
  EXPECT_EQ(row[0], "function");
  int rows = 0;
  while (r.next(row)) ++rows;
  EXPECT_EQ(rows, 3);  // a, b, TOTAL
  std::remove(path.c_str());
}

TEST(Report, AddAllMatchesIndividualAdds) {
  std::vector<InvokeResult> results;
  for (int i = 0; i < 10; ++i) {
    results.push_back(result(static_cast<FunctionId>(i % 2), i % 3 == 0,
                             100 + i, 2));
  }
  ExperimentReport a, b;
  a.add_all(results);
  for (const auto& r : results) b.add(r);
  EXPECT_EQ(a.global().invocations, b.global().invocations);
  EXPECT_EQ(a.global().cold, b.global().cold);
  EXPECT_DOUBLE_EQ(a.global().flow_ms.p50(), b.global().flow_ms.p50());
}

}  // namespace
}  // namespace ilu
