// Concurrency hammer for the observability layer: 8 threads concurrently
// pounding the logger, the metrics registry, and the transaction tracer.
// Under -DILU_SANITIZE=thread this doubles as the TSan gate for the whole
// obs/ module; without a sanitizer it still validates that no update is
// lost and that shard merges see a consistent total.

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "iluvatar.hpp"

namespace ilu {
namespace {

constexpr int kThreads = 8;
constexpr int kIters = 20000;

TEST(ObsConcurrency, LoggerMetricsAndTracerUnderContention) {
  std::ostringstream captured;
  set_log_sink(&captured);
  LogLevel level_before = log_level();
  set_log_level(LogLevel::Warn);

  MetricsRegistry reg;
  TransactionTracer tracer;
  // Wire-time registration, hot-path updates through cached pointers — the
  // same discipline the worker uses.
  Counter* ops = reg.counter("hammer.ops");
  Gauge* level = reg.gauge("hammer.level");
  Histogram* lat = reg.histogram("hammer.lat_ms", 1.0, 32);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kIters; ++i) {
        ops->inc();
        level->add(1);
        lat->observe(static_cast<double>(i % 40));
        TransactionId tx = tracer.begin_transaction();
        SpanId root = tracer.record(tx, "invoke", usecs(i), usecs(5));
        tracer.record(tx, "stage", usecs(i + 1), usecs(1), root);
        tracer.record_aggregate("agg_only", usecs(2));
        level->sub(1);
        // Concurrent registration of the same names must converge on the
        // same instruments (registry mutex path).
        if (i % 1000 == 0) {
          EXPECT_EQ(reg.counter("hammer.ops"), ops);
          log_warn("thread ", w, " at ", i);
        }
        // Concurrent snapshot/merge while other threads keep writing.
        if (w == 0 && i % 5000 == 0) {
          (void)reg.snapshot();
          (void)tracer.aggregate();
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  set_log_level(level_before);
  set_log_sink(nullptr);

  constexpr std::uint64_t kTotal =
      std::uint64_t(kThreads) * std::uint64_t(kIters);
  EXPECT_EQ(ops->value(), kTotal);
  EXPECT_EQ(level->value(), 0);
  EXPECT_EQ(lat->count(), kTotal);

  auto agg = tracer.aggregate();
  EXPECT_EQ(agg.at("invoke").count(), kTotal);
  EXPECT_EQ(agg.at("stage").count(), kTotal);
  EXPECT_EQ(agg.at("agg_only").count(), kTotal);

  // Record log is complete up to the shard caps (8 shards, default cap is
  // far above 2 * kIters records per shard, so nothing should drop).
  EXPECT_EQ(tracer.dropped_records(), 0u);
  EXPECT_EQ(tracer.collect().size(), 2 * kTotal);

  // Every captured log line arrived unsheared: "[WARN] thread <w> at <i>".
  std::istringstream lines(captured.str());
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.rfind("[WARN] thread ", 0), 0u) << line;
    ++n;
  }
  EXPECT_EQ(n, std::size_t(kThreads) * (kIters / 1000));
}

TEST(ObsConcurrency, ClearWhileRecording) {
  // Small shard cap: bounds the work each clear/collect races against, so
  // the test stays fast under TSan while still exercising the same paths.
  TransactionTracer tracer(/*enabled=*/true, /*max_records_per_shard=*/1024);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kThreads - 1; ++w) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        TransactionId tx = tracer.begin_transaction();
        tracer.record(tx, "x", usecs(0), usecs(1));
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    tracer.clear();
    (void)tracer.collect();
  }
  stop.store(true);
  for (auto& th : writers) th.join();
  tracer.clear();
  EXPECT_TRUE(tracer.collect().empty());
}

}  // namespace
}  // namespace ilu
