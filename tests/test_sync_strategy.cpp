// Unit tests for the pluggable shard-synchronization machinery (DESIGN.md
// §16): the checkpoint primitives (Task::clone, IndexedHeap::clone_with,
// SimRuntime::checkpoint/restore + Snapshotter), commit-buffered telemetry
// (flight mark/rewind, MetricsRegistry value round-trips), worker→shard
// placement, and the end-to-end contract that conservative, optimistic, and
// auto sync produce identical event sequences.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "lb/placement.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "runtime/indexed_heap.hpp"
#include "runtime/sharded_runtime.hpp"
#include "runtime/sim_runtime.hpp"
#include "runtime/task.hpp"

namespace ilu {
namespace {

// ---- Task::clone ---------------------------------------------------------

TEST(SyncStrategy, TaskCloneProducesIndependentCopies) {
  int fired = 0;
  Task t([&fired] { ++fired; });
  ASSERT_TRUE(t.clonable());
  Task copy = t.clone();
  t();
  copy();
  EXPECT_EQ(fired, 2);
}

TEST(SyncStrategy, TaskClonabilityTracksCopyConstructibility) {
  Task copyable([] {});
  EXPECT_TRUE(copyable.clonable());
  auto owned = std::make_unique<int>(7);
  Task move_only([p = std::move(owned)] { (void)*p; });
  EXPECT_FALSE(move_only.clonable())
      << "a move-only capture cannot be checkpointed";
}

// ---- IndexedHeap::clone_with ---------------------------------------------

TEST(SyncStrategy, HeapCloneWithPreservesHandlesAndOrder) {
  IndexedHeap<int, int> heap;
  auto a = heap.push(3, 30);
  auto b = heap.push(1, 10);
  auto c = heap.push(2, 20);
  heap.erase(c);

  auto copy = heap.clone_with([](const int& v) { return v; });
  // Handles issued against the original resolve identically in the clone:
  // slot indices, generations, and the free list all survive.
  EXPECT_TRUE(copy.contains(a));
  EXPECT_TRUE(copy.contains(b));
  EXPECT_FALSE(copy.contains(c));
  EXPECT_EQ(copy.size(), 2u);
  EXPECT_EQ(copy.pop_min(), 10);
  EXPECT_EQ(copy.pop_min(), 30);
  // The original is untouched.
  EXPECT_EQ(heap.size(), 2u);
  EXPECT_EQ(heap.pop_min(), 10);
}

// ---- SimRuntime checkpoint/restore ---------------------------------------

TEST(SyncStrategy, CheckpointRestoreRewindsEventsAndSnapshotters) {
  SimRuntime rt;
  int fired = 0;  // external, deliberately NOT checkpointed
  int comp = 0;   // component state owned by a snapshotter
  rt.add_snapshotter(Snapshotter{
      [&comp]() -> std::shared_ptr<void> { return std::make_shared<int>(comp); },
      [&comp](const std::shared_ptr<void>& blob) {
        comp = *static_cast<const int*>(blob.get());
      }});
  rt.schedule(Duration{10}, [&fired] { ++fired; });
  rt.schedule(Duration{30}, [&fired, &comp] {
    ++fired;
    comp = 99;
  });
  rt.run_until(TimePoint{20});
  EXPECT_EQ(fired, 1);

  auto cp = rt.checkpoint();
  rt.run_until(TimePoint{40});
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(comp, 99);

  rt.restore(std::move(cp));
  EXPECT_EQ(rt.now(), TimePoint{20}) << "virtual time must rewind";
  EXPECT_EQ(comp, 0) << "snapshotter state must rewind";
  rt.run_until(TimePoint{40});
  EXPECT_EQ(fired, 3) << "the rolled-back event must re-execute";
  EXPECT_EQ(comp, 99);
}

TEST(SyncStrategy, RestoredTimerIdsStayCancellable) {
  SimRuntime rt;
  int fired = 0;
  Runtime::TimerId id = rt.schedule(Duration{100}, [&fired] { ++fired; });
  auto cp = rt.checkpoint();
  rt.run_until(TimePoint{200});
  EXPECT_EQ(fired, 1);
  rt.restore(std::move(cp));
  // The heap clone preserved slot generations, so the pre-checkpoint id
  // still names the (restored) timer and can cancel it.
  EXPECT_TRUE(rt.cancel(id));
  rt.run_until(TimePoint{200});
  EXPECT_EQ(fired, 1);
}

// ---- commit-buffered telemetry -------------------------------------------

TEST(SyncStrategy, FlightRewindDropsSpeculativeRecords) {
  auto& rec = flight::Recorder::instance();
  rec.set_enabled(true);
  flight::Ring& ring = rec.local_ring();
  ring.clear();
  flight::record(std::uint64_t{1}, flight::Ev::kInvokeArrival, 1);
  flight::record(std::uint64_t{2}, flight::Ev::kInvokeArrival, 2);
  std::uint64_t m = flight::mark();
  flight::record(std::uint64_t{3}, flight::Ev::kInvokeArrival, 3);
  flight::record(std::uint64_t{4}, flight::Ev::kInvokeArrival, 4);
  flight::rewind(m);
  EXPECT_EQ(ring.recorded(), 2u)
      << "records stamped after the mark must be erased";
  auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].arg, 2u);
}

TEST(SyncStrategy, MetricsValuesRoundTrip) {
  MetricsRegistry reg;
  Counter* c = reg.counter("sync.test.count");
  Gauge* g = reg.gauge("sync.test.depth");
  c->inc();
  g->set(5);
  MetricsRegistry::Values vals = reg.save_values();
  c->inc();
  c->inc();
  g->set(42);
  reg.restore_values(vals);
  EXPECT_EQ(c->value(), 1u);
  EXPECT_EQ(g->value(), 5);
}

// ---- placement -----------------------------------------------------------

TEST(SyncStrategy, AssignShardsRoundRobinStripes) {
  auto map = assign_shards(Placement::kRoundRobin, 8, 3, 16);
  ASSERT_EQ(map.size(), 8u);
  for (std::size_t w = 0; w < map.size(); ++w) EXPECT_EQ(map[w], w % 3);
}

TEST(SyncStrategy, AssignShardsLocalityIsABalancedPartition) {
  const std::size_t workers = 10, shards = 3;
  auto map = assign_shards(Placement::kLocality, workers, shards, 16);
  ASSERT_EQ(map.size(), workers);
  std::vector<std::size_t> sizes(shards, 0);
  for (std::size_t s : map) {
    ASSERT_LT(s, shards);
    ++sizes[s];
  }
  const std::size_t ceil_chunk = (workers + shards - 1) / shards;
  for (std::size_t s = 0; s < shards; ++s) {
    EXPECT_GE(sizes[s], 1u) << "no shard may be empty when W >= S";
    EXPECT_LE(sizes[s], ceil_chunk);
  }
  // Deterministic: a pure function of its arguments.
  EXPECT_EQ(map, assign_shards(Placement::kLocality, workers, shards, 16));
  EXPECT_EQ(std::string("locality"), to_string(Placement::kLocality));
  EXPECT_EQ(std::string("roundrobin"), to_string(Placement::kRoundRobin));
}

// ---- strategy equivalence ------------------------------------------------

struct ActorLog {
  std::vector<std::pair<std::int64_t, int>> entries;
};

/// Run a fixed two-shard actor workload under `strat` and return the merged
/// (time, id) event log. Each shard's log is guarded by a snapshotter that
/// truncates back to the checkpoint length, so speculative execution that
/// rolls back leaves no phantom entries.
std::vector<std::pair<std::int64_t, int>> run_actors(SyncStrategy strat,
                                                     std::uint64_t* rollbacks) {
  SyncConfig cfg;
  cfg.strategy = strat;
  cfg.speculation = 16.0;
  ShardedRuntime srt(2, Duration{50}, cfg);
  ActorLog logs[2];
  for (int s = 0; s < 2; ++s) {
    ActorLog* log = &logs[s];
    srt.shard(s).add_snapshotter(Snapshotter{
        [log]() -> std::shared_ptr<void> {
          return std::make_shared<std::size_t>(log->entries.size());
        },
        [log](const std::shared_ptr<void>& blob) {
          log->entries.resize(*static_cast<const std::size_t*>(blob.get()));
        }});
  }
  SimRuntime* s0 = &srt.shard(0);
  SimRuntime* s1 = &srt.shard(1);
  for (std::int64_t t = 7; t <= 900; t += 7) {
    srt.shard(0).schedule(Duration{t}, [&logs, s0] {
      logs[0].entries.emplace_back(s0->now().count(), 0);
    });
  }
  for (std::int64_t t = 11; t <= 900; t += 11) {
    srt.shard(1).schedule(Duration{t}, [&logs, s1] {
      logs[1].entries.emplace_back(s1->now().count(), 1);
    });
  }
  // A cross-shard message that, under optimistic sync, lands in shard 1's
  // speculated past and forces a rollback.
  srt.shard(0).schedule(Duration{203}, [&srt, &logs, s0, s1] {
    srt.send(0, 1, s0->now() + Duration{51}, 5, [&logs, s1] {
      logs[1].entries.emplace_back(s1->now().count(), 99);
    });
  });
  srt.run_until(TimePoint{1000});
  if (rollbacks != nullptr) *rollbacks = srt.rollbacks();

  std::vector<std::pair<std::int64_t, int>> merged = logs[0].entries;
  merged.insert(merged.end(), logs[1].entries.begin(), logs[1].entries.end());
  std::sort(merged.begin(), merged.end());
  return merged;
}

TEST(SyncStrategy, OptimisticMatchesConservative) {
  std::uint64_t cons_rb = 0, opt_rb = 0;
  auto cons = run_actors(SyncStrategy::kConservative, &cons_rb);
  auto opt = run_actors(SyncStrategy::kOptimistic, &opt_rb);
  ASSERT_FALSE(cons.empty());
  EXPECT_EQ(cons, opt) << "strategies must be result-equivalent";
  EXPECT_EQ(cons_rb, 0u) << "conservative sync never rolls back";
  EXPECT_GE(opt_rb, 1u)
      << "the straggler message must have forced at least one rollback";
  // The delivered cross-shard message appears exactly once.
  EXPECT_EQ(std::count_if(opt.begin(), opt.end(),
                          [](const auto& e) { return e.second == 99; }),
            1);
}

TEST(SyncStrategy, AutoMatchesConservative) {
  auto cons = run_actors(SyncStrategy::kConservative, nullptr);
  auto aut = run_actors(SyncStrategy::kAuto, nullptr);
  EXPECT_EQ(cons, aut);
}

}  // namespace
}  // namespace ilu
