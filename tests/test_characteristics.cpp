#include "common/characteristics.hpp"

#include <gtest/gtest.h>

#include "core/span_tracer.hpp"

namespace ilu {
namespace {

TEST(Characteristics, UnseenFunctionIsZero) {
  CharacteristicsMap m;
  EXPECT_EQ(m.expected_warm(5), Duration::zero());
  EXPECT_EQ(m.expected_cold(5), Duration::zero());
  EXPECT_DOUBLE_EQ(m.mean_iat_s(5), 0.0);
  EXPECT_EQ(m.arrivals(5), 0u);
}

TEST(Characteristics, MovingWindowMean) {
  CharacteristicsMap m;
  m.record_warm(0, msecs(100));
  m.record_warm(0, msecs(200));
  EXPECT_EQ(m.expected_warm(0), msecs(150));
}

TEST(Characteristics, WindowEvictsOldSamples) {
  CharacteristicsMap m(/*window=*/2);
  m.record_warm(0, msecs(1000));
  m.record_warm(0, msecs(100));
  m.record_warm(0, msecs(100));
  EXPECT_EQ(m.expected_warm(0), msecs(100));
}

TEST(Characteristics, ColdAndWarmTrackedSeparately) {
  CharacteristicsMap m;
  m.record_warm(0, msecs(100));
  m.record_cold(0, secs(2));
  EXPECT_EQ(m.expected_warm(0), msecs(100));
  EXPECT_EQ(m.expected_cold(0), secs(2));
  EXPECT_EQ(m.warm_count(0), 1u);
  EXPECT_EQ(m.cold_count(0), 1u);
}

TEST(Characteristics, IatTracking) {
  CharacteristicsMap m;
  m.on_arrival(0, secs(0));
  m.on_arrival(0, secs(10));
  m.on_arrival(0, secs(20));
  EXPECT_DOUBLE_EQ(m.mean_iat_s(0), 10.0);
  EXPECT_EQ(m.arrivals(0), 3u);
}

TEST(Characteristics, FirstArrivalHasNoIat) {
  CharacteristicsMap m;
  m.on_arrival(0, secs(100));
  EXPECT_DOUBLE_EQ(m.mean_iat_s(0), 0.0);
}

TEST(Characteristics, IndependentFunctions) {
  CharacteristicsMap m;
  m.record_warm(0, msecs(10));
  m.record_warm(3, msecs(90));
  EXPECT_EQ(m.expected_warm(0), msecs(10));
  EXPECT_EQ(m.expected_warm(3), msecs(90));
  EXPECT_EQ(m.expected_warm(1), Duration::zero());
}

TEST(SpanTracer, RecordsAndSummarizes) {
  SpanTracer t;
  t.record(spans::kCallContainer, msecs(1.0));
  t.record(spans::kCallContainer, msecs(2.0));
  EXPECT_NEAR(t.mean_ms(spans::kCallContainer), 1.5, 1e-9);
  EXPECT_EQ(t.count(spans::kCallContainer), 2u);
}

TEST(SpanTracer, DisabledTracerIsNoOp) {
  SpanTracer t(false);
  t.record(spans::kInvoke, msecs(1.0));
  EXPECT_EQ(t.count(spans::kInvoke), 0u);
  EXPECT_DOUBLE_EQ(t.mean_ms(spans::kInvoke), 0.0);
}

TEST(SpanTracer, UnknownSpanIsZero) {
  SpanTracer t;
  EXPECT_DOUBLE_EQ(t.mean_ms("nope"), 0.0);
}

TEST(SpanTracer, ClearResets) {
  SpanTracer t;
  t.record(spans::kInvoke, msecs(1.0));
  t.clear();
  EXPECT_EQ(t.count(spans::kInvoke), 0u);
}

}  // namespace
}  // namespace ilu
