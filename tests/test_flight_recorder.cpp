// Flight recorder (obs/flight): ring wrap semantics, concurrent write+drain
// (run under TSan in the sanitizer matrix), binary dump round-trip, Chrome
// trace conversion, and the dump-on-ILU_DCHECK-abort hook.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight.hpp"
#include "util/dcheck.hpp"
#include "util/json.hpp"

namespace ilu {
namespace {

using flight::Ev;
using flight::Event;
using flight::Recorder;
using flight::Ring;
using flight::RingDump;

TEST(FlightRing, FillsInOrderBeforeWrap) {
  Ring r(8, /*tid=*/3);
  for (std::uint64_t i = 0; i < 5; ++i) {
    r.record(100 + i, Ev::kQueueEnq, static_cast<std::uint32_t>(i));
  }
  auto ev = r.snapshot();
  ASSERT_EQ(ev.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(ev[i].ts_us, 100 + i);
    EXPECT_EQ(ev[i].code, static_cast<std::uint16_t>(Ev::kQueueEnq));
    EXPECT_EQ(ev[i].tid, 3);
    EXPECT_EQ(ev[i].arg, i);
  }
  EXPECT_EQ(r.recorded(), 5u);
}

TEST(FlightRing, WrapKeepsLastCapacityRecords) {
  constexpr std::size_t kCap = 16;
  Ring r(kCap, 0);
  constexpr std::uint64_t kTotal = 3 * kCap + 5;
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    r.record(i, Ev::kComplete, static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(r.recorded(), kTotal);
  auto ev = r.snapshot();
  ASSERT_EQ(ev.size(), kCap);
  // Oldest-first: the surviving records are exactly the last kCap writes.
  for (std::size_t i = 0; i < kCap; ++i) {
    EXPECT_EQ(ev[i].ts_us, kTotal - kCap + i);
    EXPECT_EQ(ev[i].arg, kTotal - kCap + i);
  }
}

TEST(FlightRing, CapacityRoundsUpToPowerOfTwo) {
  Ring r(10, 0);
  EXPECT_EQ(r.capacity(), 16u);
}

TEST(FlightRing, ClearDropsRecords) {
  Ring r(8, 0);
  r.record(1, Ev::kEviction, 0);
  r.clear();
  EXPECT_TRUE(r.snapshot().empty());
  EXPECT_EQ(r.recorded(), 0u);
}

/// Writer hammers the ring while a reader snapshots concurrently: must be
/// TSan-clean, every snapshot bounded by capacity, and every drained record
/// structurally valid (the writer only ever stamps one code/arg pattern).
TEST(FlightRing, ConcurrentWriteAndDrain) {
  constexpr std::size_t kCap = 64;
  Ring r(kCap, 7);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      r.record(i, Ev::kQueueDeq, static_cast<std::uint32_t>(i & 0xffff));
      ++i;
    }
  });
  for (int round = 0; round < 2000; ++round) {
    auto ev = r.snapshot();
    EXPECT_LE(ev.size(), kCap);
    for (const auto& e : ev) {
      EXPECT_EQ(e.code, static_cast<std::uint16_t>(Ev::kQueueDeq));
      EXPECT_EQ(e.tid, 7);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  // Quiescent drain is exact: strictly increasing timestamps.
  auto ev = r.snapshot();
  for (std::size_t i = 1; i < ev.size(); ++i) {
    EXPECT_EQ(ev[i].ts_us, ev[i - 1].ts_us + 1);
  }
}

TEST(FlightRecorder, DisabledRecordsNothing) {
  Recorder rec(/*enabled=*/false, 64);
  rec.record(1, Ev::kInvokeArrival, 0);
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_EQ(rec.ring_count(), 0u) << "disabled record must not register rings";
  rec.set_enabled(true);
  rec.record(2, Ev::kInvokeArrival, 9);
  EXPECT_EQ(rec.recorded(), 1u);
}

TEST(FlightRecorder, OneRingPerThread) {
  Recorder rec(true, 64);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&rec, t] {
      for (int i = 0; i < kPerThread; ++i) {
        rec.record(static_cast<std::uint64_t>(i), Ev::kWindowBarrier,
                   static_cast<std::uint32_t>(t));
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(rec.ring_count(), static_cast<std::size_t>(kThreads));
  EXPECT_EQ(rec.recorded(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  // Each ring carries exactly one thread's records (single-writer).
  for (const auto& d : rec.snapshot_all()) {
    ASSERT_EQ(d.events.size(), static_cast<std::size_t>(kPerThread));
    for (const auto& e : d.events) EXPECT_EQ(e.arg, d.events[0].arg);
  }
}

TEST(FlightRecorder, DumpDecodeRoundTrip) {
  Recorder rec(true, 32);
  for (std::uint64_t i = 0; i < 40; ++i) {  // wraps: 40 > 32
    rec.record(i, Ev::kColdCreate, static_cast<std::uint32_t>(i * 3));
  }
  std::ostringstream os;
  std::size_t n = rec.dump(os);
  std::string bytes = os.str();
  EXPECT_EQ(bytes.size(), n);

  auto rings = flight::decode(bytes);
  auto live = rec.snapshot_all();
  ASSERT_EQ(rings.size(), live.size());
  ASSERT_EQ(rings.size(), 1u);
  EXPECT_EQ(rings[0].tid, live[0].tid);
  EXPECT_EQ(rings[0].recorded, 40u);
  ASSERT_EQ(rings[0].events.size(), live[0].events.size());
  for (std::size_t i = 0; i < rings[0].events.size(); ++i) {
    EXPECT_EQ(rings[0].events[i].ts_us, live[0].events[i].ts_us);
    EXPECT_EQ(rings[0].events[i].code, live[0].events[i].code);
    EXPECT_EQ(rings[0].events[i].arg, live[0].events[i].arg);
  }
}

TEST(FlightRecorder, DumpToFileAndReadBack) {
  Recorder rec(true, 16);
  rec.record(7, Ev::kLbRoute, 2);
  std::string path = ::testing::TempDir() + "flight_roundtrip.bin";
  ASSERT_TRUE(rec.dump_to_file(path));
  auto rings = flight::read_dump(path);
  ASSERT_EQ(rings.size(), 1u);
  ASSERT_EQ(rings[0].events.size(), 1u);
  EXPECT_EQ(rings[0].events[0].ts_us, 7u);
  EXPECT_EQ(rings[0].events[0].code,
            static_cast<std::uint16_t>(Ev::kLbRoute));
  std::remove(path.c_str());
}

TEST(FlightDecode, RejectsBadMagicAndTruncation) {
  EXPECT_THROW(flight::decode("not a dump"), std::runtime_error);
  Recorder rec(true, 16);
  rec.record(1, Ev::kPrewarm, 0);
  std::ostringstream os;
  rec.dump(os);
  std::string bytes = os.str();
  EXPECT_THROW(flight::decode(bytes.substr(0, bytes.size() - 3)),
               std::runtime_error);
  EXPECT_THROW(flight::decode(bytes + "x"), std::runtime_error)
      << "trailing bytes must be rejected";
}

TEST(FlightChromeTrace, ProducesValidSortedJson) {
  Recorder rec(true, 32);
  rec.record(10, Ev::kInvokeArrival, 1);
  rec.record(20, Ev::kQueueEnq, 1);
  rec.record(30, Ev::kComplete, 1);
  std::string json = flight::chrome_trace_json(rec.snapshot_all(), 42);
  JsonValue doc = json_parse(json);
  const JsonValue* evs = doc.find("traceEvents");
  ASSERT_NE(evs, nullptr);
  ASSERT_TRUE(evs->is_array());
  ASSERT_EQ(evs->as_array().size(), 3u);
  double prev_ts = -1.0;
  for (const auto& e : evs->as_array()) {
    EXPECT_EQ(e.find("ph")->as_string(), "i");
    EXPECT_EQ(e.find("pid")->as_number(), 42.0);
    double ts = e.find("ts")->as_number();
    EXPECT_GE(ts, prev_ts) << "events must be sorted by timestamp";
    prev_ts = ts;
  }
  EXPECT_EQ(evs->as_array()[0].find("name")->as_string(),
            flight::ev_name(Ev::kInvokeArrival));
}

TEST(FlightEvNames, KnownAndUnknown) {
  EXPECT_STREQ(flight::ev_name(Ev::kColdCreate), "cold_create");
  EXPECT_STREQ(flight::ev_name(static_cast<Ev>(0xbeef)), "?");
}

/// The crash hook: dcheck_fail must write the installed dump before
/// aborting, leaving a decodable post-mortem of the events recorded up to
/// the failure. The child of this death test inherits the singleton's rings.
TEST(FlightCrashDumpDeathTest, DcheckFailureWritesDump) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::string path = ::testing::TempDir() + "flight_crash.bin";
  std::remove(path.c_str());
  Recorder::instance().set_enabled(true);
  Recorder::install_crash_dump(path);
  EXPECT_DEATH(
      {
        // Recorded in the death-test child so the dump must contain it.
        flight::record(123, Ev::kFailure, 77);
        detail::dcheck_fail("flight_test.cpp", 1, "false",
                            "intentional crash-dump test failure");
      },
      "intentional crash-dump test failure");
  auto rings = flight::read_dump(path);
  bool found = false;
  for (const auto& d : rings) {
    for (const auto& e : d.events) {
      if (e.ts_us == 123 && e.code == static_cast<std::uint16_t>(Ev::kFailure) &&
          e.arg == 77) {
        found = true;
      }
    }
  }
  EXPECT_TRUE(found) << "crash dump must contain the pre-abort record";
  Recorder::install_crash_dump("");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ilu
