#include "baseline/openwhisk.hpp"

#include <gtest/gtest.h>

#include "core/worker.hpp"
#include "runtime/sim_runtime.hpp"
#include "trace/function_profile.hpp"
#include "util/stats.hpp"

namespace ilu {
namespace {

OpenWhiskConfig base_config() {
  OpenWhiskConfig cfg;
  cfg.cores = 8.0;
  cfg.memory_mb = 4096;
  cfg.seed = 77;
  return cfg;
}

class OpenWhiskTest : public ::testing::Test {
 protected:
  OpenWhiskTest() : ow_(rt_, base_config()) {
    fn_ = ow_.register_function(pyaes());
    ow_.start();
  }
  ~OpenWhiskTest() override { ow_.shutdown(); }

  InvokeResult invoke_and_run(FunctionId fn) {
    InvokeResult out;
    bool done = false;
    ow_.invoke(fn, [&](const InvokeResult& r) {
      out = r;
      done = true;
    });
    for (int i = 0; i < 10000 && !done; ++i) rt_.run_for(msecs(100));
    EXPECT_TRUE(done);
    return out;
  }

  SimRuntime rt_;
  OpenWhiskModel ow_;
  FunctionId fn_ = 0;
};

TEST_F(OpenWhiskTest, ColdThenWarm) {
  auto c = invoke_and_run(fn_);
  EXPECT_TRUE(c.cold);
  auto w = invoke_and_run(fn_);
  EXPECT_FALSE(w.cold);
  EXPECT_EQ(ow_.warm_starts(), 1u);
  EXPECT_EQ(ow_.cold_starts(), 1u);
}

TEST_F(OpenWhiskTest, WarmOverheadIsTensOfMilliseconds) {
  invoke_and_run(fn_);
  Summary overhead;
  for (int i = 0; i < 50; ++i) {
    auto r = invoke_and_run(fn_);
    overhead.add_ms(r.overhead());
  }
  // The paper's Fig 1: OpenWhisk p50 overhead is >10 ms even at low load.
  EXPECT_GT(overhead.p50(), 8.0);
  EXPECT_LT(overhead.p50(), 200.0);
}

TEST_F(OpenWhiskTest, OverheadFarExceedsIluvatar) {
  // Same machine, same function, warm starts only: OW must be ~5-100x
  // worse than the Ilúvatar worker (the paper reports ~100x at scale).
  invoke_and_run(fn_);
  Summary ow;
  for (int i = 0; i < 30; ++i) ow.add_ms(invoke_and_run(fn_).overhead());

  WorkerConfig wcfg;
  wcfg.cores = 8.0;
  wcfg.memory_mb = 4096;
  Worker worker(rt_, wcfg);
  auto f = worker.register_function(pyaes());
  worker.start();
  Summary ilu_s;
  for (int i = 0; i < 31; ++i) {
    bool done = false;
    InvokeResult res;
    worker.invoke(f, [&](const InvokeResult& r) {
      res = r;
      done = true;
    });
    for (int k = 0; k < 1000 && !done; ++k) rt_.run_for(msecs(100));
    ASSERT_TRUE(done);
    if (i > 0) ilu_s.add_ms(res.overhead());  // skip the cold start
  }
  worker.shutdown();
  EXPECT_GT(ow.p50(), 4.0 * ilu_s.p50());
}

TEST_F(OpenWhiskTest, GcSpikesProduceHeavyTail) {
  OpenWhiskConfig cfg = base_config();
  cfg.gc_pause_prob = 0.2;
  OpenWhiskModel ow(rt_, cfg);
  auto f = ow.register_function(pyaes());
  ow.start();
  Summary overhead;
  for (int i = 0; i < 100; ++i) {
    bool done = false;
    InvokeResult res;
    ow.invoke(f, [&](const InvokeResult& r) {
      res = r;
      done = true;
    });
    for (int k = 0; k < 1000 && !done; ++k) rt_.run_for(msecs(100));
    ASSERT_TRUE(done);
    overhead.add_ms(res.overhead());
  }
  ow.shutdown();
  // p99 must be far above the median: the characteristic OW jitter.
  EXPECT_GT(overhead.p99(), 3.0 * overhead.p50());
}

TEST_F(OpenWhiskTest, DropsWhenMemoryExhaustedAndBufferFull) {
  OpenWhiskConfig cfg = base_config();
  cfg.memory_mb = 600;  // one ml_inference container (512 MB)
  cfg.buffer_capacity = 2;
  cfg.buffer_timeout = secs(5);
  OpenWhiskModel ow(rt_, cfg);
  auto f = ow.register_function(function_bench_app("ml_inference"));
  ow.start();
  int dropped = 0, done = 0;
  for (int i = 0; i < 8; ++i) {
    ow.invoke(f, [&](const InvokeResult& r) {
      ++done;
      dropped += r.dropped ? 1 : 0;
    });
  }
  rt_.run_for(mins(5));
  ow.shutdown();
  EXPECT_EQ(done, 8);
  EXPECT_GT(dropped, 0);
  EXPECT_EQ(ow.dropped(), static_cast<std::uint64_t>(dropped));
}

TEST_F(OpenWhiskTest, BufferedInvocationRunsWhenMemoryFrees) {
  OpenWhiskConfig cfg = base_config();
  cfg.memory_mb = 600;
  cfg.buffer_capacity = 10;
  cfg.buffer_timeout = mins(2);
  OpenWhiskModel ow(rt_, cfg);
  auto f = ow.register_function(function_bench_app("ml_inference"));
  ow.start();
  int success = 0;
  for (int i = 0; i < 3; ++i) {
    ow.invoke(f, [&](const InvokeResult& r) { success += r.success; });
  }
  rt_.run_for(mins(4));
  ow.shutdown();
  EXPECT_EQ(success, 3);
}

TEST_F(OpenWhiskTest, ContentionInflatesLatencyWithLoad) {
  // Overhead at 32 concurrent invocations should exceed overhead at 1.
  invoke_and_run(fn_);
  // Warm pool with several containers first.
  int warmed = 0;
  for (int i = 0; i < 32; ++i) {
    ow_.invoke(fn_, [&](const InvokeResult&) { ++warmed; });
  }
  rt_.run_for(mins(2));
  ASSERT_EQ(warmed, 32);
  // Low load sample.
  Summary low;
  for (int i = 0; i < 20; ++i) low.add_ms(invoke_and_run(fn_).overhead());
  // High load: 32 concurrent.
  Summary high;
  int done = 0;
  for (int i = 0; i < 32; ++i) {
    ow_.invoke(fn_, [&](const InvokeResult& r) {
      high.add_ms(r.overhead());
      ++done;
    });
  }
  rt_.run_for(mins(2));
  ASSERT_EQ(done, 32);
  EXPECT_GT(high.mean(), low.mean());
}

TEST_F(OpenWhiskTest, MaxInflightRejectsWithSystemOverloaded) {
  OpenWhiskConfig cfg = base_config();
  cfg.max_inflight = 4;
  OpenWhiskModel ow(rt_, cfg);
  auto f = ow.register_function(function_bench_app("ml_inference"));
  ow.start();
  int dropped = 0, done = 0;
  // Burst of 10 slow invocations against a 4-slot admission limit: the
  // overflow is rejected immediately (OpenWhisk's 429).
  for (int i = 0; i < 10; ++i) {
    ow.invoke(f, [&](const InvokeResult& r) {
      ++done;
      dropped += r.dropped ? 1 : 0;
    });
  }
  // Rejections are synchronous.
  EXPECT_EQ(dropped, 6);
  rt_.run_for(mins(5));
  ow.shutdown();
  EXPECT_EQ(done, 10);
  EXPECT_EQ(ow.dropped(), 6u);
  EXPECT_EQ(ow.completed(), 4u);
}

TEST_F(OpenWhiskTest, MaxInflightZeroMeansUnlimited) {
  OpenWhiskConfig cfg = base_config();
  cfg.max_inflight = 0;
  OpenWhiskModel ow(rt_, cfg);
  auto f = ow.register_function(pyaes());
  ow.start();
  int done = 0, dropped = 0;
  for (int i = 0; i < 20; ++i) {
    ow.invoke(f, [&](const InvokeResult& r) {
      ++done;
      dropped += r.dropped ? 1 : 0;
    });
  }
  rt_.run_for(mins(3));
  ow.shutdown();
  EXPECT_EQ(done, 20);
  EXPECT_EQ(dropped, 0);
}

TEST_F(OpenWhiskTest, SlotsFreeAfterCompletion) {
  OpenWhiskConfig cfg = base_config();
  cfg.max_inflight = 2;
  OpenWhiskModel ow(rt_, cfg);
  auto f = ow.register_function(pyaes());
  ow.start();
  int ok = 0;
  ow.invoke(f, [&](const InvokeResult& r) { ok += r.success; });
  ow.invoke(f, [&](const InvokeResult& r) { ok += r.success; });
  rt_.run_for(mins(1));
  // Slots released: a third invocation is admitted.
  ow.invoke(f, [&](const InvokeResult& r) { ok += r.success; });
  rt_.run_for(mins(1));
  ow.shutdown();
  EXPECT_EQ(ok, 3);
}

}  // namespace
}  // namespace ilu
