// Death tests for the slab's debug stale-handle detection. This binary is
// compiled with ILU_DEBUG_CHECKS=1 (unlike the main library, where ILU_DCHECK
// compiles out in release builds), so a dereference through a recycled or
// erased handle must abort with a diagnostic instead of silently aliasing
// whatever record now occupies the slot. Header-only on purpose: everything
// it exercises (runtime/slab.hpp, util/dcheck.hpp, containers/container.hpp)
// is inline, so no library TU compiled without the flag gets mixed in.

#include <gtest/gtest.h>

#include "containers/container.hpp"
#include "runtime/slab.hpp"

namespace ilu {
namespace {

static_assert(ILU_DEBUG_CHECKS == 1,
              "this test must build with slab handle checks enabled");

class SlabGuardDeathTest : public ::testing::Test {
 protected:
  SlabGuardDeathTest() {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

TEST_F(SlabGuardDeathTest, GetAfterEraseAborts) {
  ContainerStore store;
  ContainerHandle h = store.emplace();
  store.get(h).id = 7;
  store.erase(h);
  EXPECT_DEATH(store.get(h), "stale slab handle");
}

TEST_F(SlabGuardDeathTest, GetThroughRecycledSlotAborts) {
  ContainerStore store;
  ContainerHandle old = store.emplace();
  store.erase(old);
  ContainerHandle fresh = store.emplace();  // same slot, new generation
  ASSERT_EQ(fresh.index, old.index);
  ASSERT_NE(fresh.gen, old.gen);
  ASSERT_TRUE(store.contains(fresh));
  ASSERT_FALSE(store.contains(old));
  EXPECT_DEATH(store.get(old), "stale slab handle");
}

TEST_F(SlabGuardDeathTest, DoubleEraseAborts) {
  Slab<int> slab;
  SlabHandle h = slab.emplace(42);
  slab.erase(h);
  EXPECT_DEATH(slab.erase(h), "stale slab handle");
}

TEST_F(SlabGuardDeathTest, NullHandleGetAborts) {
  Slab<int> slab;
  (void)slab.emplace(1);
  SlabHandle null_handle;  // index 0, gen 0: never issued
  EXPECT_DEATH(slab.get(null_handle), "stale slab handle");
}

TEST(SlabGuard, ContainsIsExactAcrossRecycling) {
  Slab<int> slab;
  SlabHandle a = slab.emplace(1);
  SlabHandle b = slab.emplace(2);
  slab.erase(a);
  SlabHandle c = slab.emplace(3);  // recycles a's slot
  EXPECT_FALSE(slab.contains(a));
  EXPECT_TRUE(slab.contains(b));
  EXPECT_TRUE(slab.contains(c));
  EXPECT_EQ(slab.get(c), 3);
  EXPECT_EQ(slab.get(b), 2);
}

}  // namespace
}  // namespace ilu
