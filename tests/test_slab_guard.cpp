// Death tests for the slab's debug stale-handle detection. This binary is
// compiled with ILU_DEBUG_CHECKS=1 (unlike the main library, where ILU_DCHECK
// compiles out in release builds), so a dereference through a recycled or
// erased handle must abort with a diagnostic instead of silently aliasing
// whatever record now occupies the slot. Header-only on purpose: everything
// it exercises (runtime/slab.hpp, util/dcheck.hpp, containers/container.hpp)
// is inline, so no library TU compiled without the flag gets mixed in.

#include <gtest/gtest.h>

#include "containers/container.hpp"
#include "runtime/slab.hpp"

namespace ilu {
namespace {

static_assert(ILU_DEBUG_CHECKS == 1,
              "this test must build with slab handle checks enabled");

class SlabGuardDeathTest : public ::testing::Test {
 protected:
  SlabGuardDeathTest() {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

TEST_F(SlabGuardDeathTest, GetAfterEraseAborts) {
  ContainerStore store;
  ContainerHandle h = store.emplace();
  store.get(h).id = 7;
  store.erase(h);
  EXPECT_DEATH(store.get(h), "stale slab handle");
}

TEST_F(SlabGuardDeathTest, GetThroughRecycledSlotAborts) {
  ContainerStore store;
  ContainerHandle old = store.emplace();
  store.erase(old);
  ContainerHandle fresh = store.emplace();  // same slot, new generation
  ASSERT_EQ(fresh.index, old.index);
  ASSERT_NE(fresh.gen, old.gen);
  ASSERT_TRUE(store.contains(fresh));
  ASSERT_FALSE(store.contains(old));
  EXPECT_DEATH(store.get(old), "stale slab handle");
}

TEST_F(SlabGuardDeathTest, DoubleEraseAborts) {
  Slab<int> slab;
  SlabHandle h = slab.emplace(42);
  slab.erase(h);
  EXPECT_DEATH(slab.erase(h), "stale slab handle");
}

TEST_F(SlabGuardDeathTest, NullHandleGetAborts) {
  Slab<int> slab;
  (void)slab.emplace(1);
  SlabHandle null_handle;  // index 0, gen 0: never issued
  EXPECT_DEATH(slab.get(null_handle), "stale slab handle");
}

// ---- snapshot / restore (the Time Warp checkpoint primitive) -------------

TEST(SlabGuard, SnapshotRestoreRoundTripsLiveAndFreeSlots) {
  Slab<int> slab;
  SlabHandle a = slab.emplace(1);
  SlabHandle b = slab.emplace(2);
  SlabHandle c = slab.emplace(3);
  slab.erase(b);  // interleave: live, free, live
  auto snap = slab.snapshot();

  // Mutate past the checkpoint: erase a live slot, recycle one (the free
  // list is LIFO, so the emplace reuses a's just-freed slot).
  slab.erase(a);
  SlabHandle d = slab.emplace(4);
  ASSERT_EQ(d.index, a.index);
  slab.get(c) = 33;

  slab.restore(snap);
  EXPECT_EQ(slab.size(), 2u);
  EXPECT_TRUE(slab.contains(a));
  EXPECT_FALSE(slab.contains(b));
  EXPECT_TRUE(slab.contains(c));
  EXPECT_EQ(slab.get(a), 1);
  EXPECT_EQ(slab.get(c), 3) << "post-checkpoint write must be rolled back";
}

TEST(SlabGuard, RestorePreservesGenerationsExactly) {
  // Handles issued before the checkpoint must stay valid after a restore,
  // and the free-list must keep recycling deterministically: the same
  // post-restore allocation sequence yields the same handles every time.
  Slab<int> slab;
  SlabHandle a = slab.emplace(10);
  slab.erase(slab.emplace(20));  // leave a free slot on the list
  auto snap = slab.snapshot();

  SlabHandle first = slab.emplace(30);
  slab.restore(snap);
  SlabHandle second = slab.emplace(30);
  EXPECT_EQ(first.index, second.index);
  EXPECT_EQ(first.gen, second.gen)
      << "restore must rewind generations, not just occupancy";
  EXPECT_TRUE(slab.contains(a));
  EXPECT_EQ(slab.get(a), 10);
}

TEST_F(SlabGuardDeathTest, SpeculativeHandleAbortsAfterRestore) {
  // A handle created during a speculative window refers to state that the
  // rollback erased; dereferencing it afterwards must abort, not alias.
  Slab<int> slab;
  (void)slab.emplace(1);
  auto snap = slab.snapshot();
  SlabHandle spec = slab.emplace(2);  // allocated past the checkpoint
  slab.restore(snap);
  EXPECT_FALSE(slab.contains(spec));
  EXPECT_DEATH(slab.get(spec), "stale slab handle");
}

TEST_F(SlabGuardDeathTest, HandleErasedBeforeSnapshotStaysDeadAfterRestore) {
  Slab<int> slab;
  SlabHandle h = slab.emplace(5);
  slab.erase(h);
  auto snap = slab.snapshot();
  slab.restore(snap);
  EXPECT_DEATH(slab.get(h), "stale slab handle");
}

TEST(SlabGuard, ContainsIsExactAcrossRecycling) {
  Slab<int> slab;
  SlabHandle a = slab.emplace(1);
  SlabHandle b = slab.emplace(2);
  slab.erase(a);
  SlabHandle c = slab.emplace(3);  // recycles a's slot
  EXPECT_FALSE(slab.contains(a));
  EXPECT_TRUE(slab.contains(b));
  EXPECT_TRUE(slab.contains(c));
  EXPECT_EQ(slab.get(c), 3);
  EXPECT_EQ(slab.get(b), 2);
}

}  // namespace
}  // namespace ilu
