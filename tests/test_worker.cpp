#include "core/worker.hpp"

#include <gtest/gtest.h>

#include "runtime/sim_runtime.hpp"
#include "trace/function_profile.hpp"

namespace ilu {
namespace {

WorkerConfig base_config() {
  WorkerConfig cfg;
  cfg.cores = 8.0;
  cfg.memory_mb = 4096;
  cfg.regulator.limit = 16.0;
  cfg.pool.sweep_interval = msecs(500);
  cfg.seed = 1234;
  return cfg;
}

class WorkerTest : public ::testing::Test {
 protected:
  WorkerTest() : worker_(rt_, base_config()) {
    fn_ = worker_.register_function(pyaes());  // warm 300 ms, init 1.2 s
    worker_.start();
  }
  ~WorkerTest() override { worker_.shutdown(); }

  InvokeResult invoke_and_run(FunctionId fn) {
    InvokeResult out;
    bool done = false;
    worker_.invoke(fn, [&](const InvokeResult& r) {
      out = r;
      done = true;
    });
    // Drain events until the callback fires (pool sweeps keep the queue
    // non-empty, so run bounded time slices).
    for (int i = 0; i < 10000 && !done; ++i) rt_.run_for(msecs(100));
    EXPECT_TRUE(done);
    return out;
  }

  SimRuntime rt_;
  Worker worker_;
  FunctionId fn_ = 0;
};

TEST_F(WorkerTest, FirstInvocationIsCold) {
  auto r = invoke_and_run(fn_);
  EXPECT_TRUE(r.success);
  EXPECT_TRUE(r.cold);
  // Cold execution includes init: 1.5 s total on an idle machine.
  EXPECT_NEAR(to_ms(r.exec_time), 1500.0, 50.0);
  EXPECT_EQ(worker_.cold_starts(), 1u);
}

TEST_F(WorkerTest, SecondInvocationIsWarm) {
  invoke_and_run(fn_);
  auto r = invoke_and_run(fn_);
  EXPECT_TRUE(r.success);
  EXPECT_FALSE(r.cold);
  EXPECT_NEAR(to_ms(r.exec_time), 300.0, 20.0);
  EXPECT_EQ(worker_.warm_starts(), 1u);
}

TEST_F(WorkerTest, WarmOverheadIsMilliseconds) {
  invoke_and_run(fn_);
  auto r = invoke_and_run(fn_);
  // The paper's headline: ~2 ms mean warm overhead (Table 1 sums to ~2.07).
  EXPECT_LT(to_ms(r.overhead()), 10.0);
  EXPECT_GT(to_ms(r.overhead()), 0.5);
}

TEST_F(WorkerTest, ColdOverheadIncludesContainerCreation) {
  auto r = invoke_and_run(fn_);
  // containerd create ~300 ms + agent start ~200 ms.
  EXPECT_GT(to_ms(r.overhead()), 200.0);
}

TEST_F(WorkerTest, SpansAreRecorded) {
  invoke_and_run(fn_);
  invoke_and_run(fn_);
  auto& t = worker_.tracer();
  EXPECT_EQ(t.count(spans::kInvoke), 2u);
  EXPECT_EQ(t.count(spans::kCallContainer), 2u);
  EXPECT_EQ(t.count(spans::kTryLockContainer), 1u);  // warm path only
  EXPECT_GT(t.mean_ms(spans::kCallContainer), 0.5);
}

TEST_F(WorkerTest, PrewarmEliminatesColdStart) {
  bool ok = false;
  worker_.prewarm(fn_, [&](bool v) { ok = v; });
  rt_.run_for(secs(5));
  EXPECT_TRUE(ok);
  EXPECT_EQ(worker_.prewarms(), 1u);
  auto r = invoke_and_run(fn_);
  EXPECT_FALSE(r.cold);
}

TEST_F(WorkerTest, AsyncInvokeDeliversResultOnPoll) {
  auto token = worker_.async_invoke(fn_);
  EXPECT_FALSE(worker_.async_result(token).has_value());
  rt_.run_for(secs(10));
  auto r = worker_.async_result(token);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->success);
  // Result is consumed.
  EXPECT_FALSE(worker_.async_result(token).has_value());
}

TEST_F(WorkerTest, UnregisteredFunctionThrows) {
  EXPECT_THROW(worker_.invoke(99, [](const InvokeResult&) {}),
               std::out_of_range);
  EXPECT_THROW(worker_.prewarm(99), std::out_of_range);
}

TEST_F(WorkerTest, StatusReflectsState) {
  auto s0 = worker_.status();
  EXPECT_EQ(s0.running, 0u);
  EXPECT_EQ(s0.queue_len, 0u);
  EXPECT_DOUBLE_EQ(s0.concurrency_limit, 16.0);
  bool done = false;
  worker_.invoke(fn_, [&](const InvokeResult&) { done = true; });
  rt_.run_for(secs(1));  // mid-execution (cold takes ~2 s)
  auto s1 = worker_.status();
  EXPECT_EQ(s1.running, 1u);
  EXPECT_GT(s1.used_mb, 0u);
  rt_.run_for(secs(10));
  EXPECT_TRUE(done);
}

TEST_F(WorkerTest, ConcurrencyLimitQueuesExcess) {
  // Limit is 16; submit 32 concurrent invocations of a 300 ms function
  // (after warming one container).
  invoke_and_run(fn_);
  int completed = 0;
  for (int i = 0; i < 32; ++i) {
    worker_.invoke(fn_, [&](const InvokeResult& r) {
      EXPECT_TRUE(r.success);
      ++completed;
    });
  }
  rt_.run_for(msecs(10));
  auto s = worker_.status();
  EXPECT_LE(s.running, 16u);
  EXPECT_GE(s.queue_len, 15u);
  rt_.run_for(secs(60));
  EXPECT_EQ(completed, 32);
}

TEST_F(WorkerTest, ConcurrentSameFunctionInvocationsSpawnStart) {
  // Two simultaneous invocations need two containers: both cold.
  int cold = 0, done = 0;
  for (int i = 0; i < 2; ++i) {
    worker_.invoke(fn_, [&](const InvokeResult& r) {
      ++done;
      cold += r.cold ? 1 : 0;
    });
  }
  rt_.run_for(secs(20));
  EXPECT_EQ(done, 2);
  EXPECT_EQ(cold, 2);
}

TEST_F(WorkerTest, MemoryExhaustionParksInvocations) {
  WorkerConfig cfg = base_config();
  cfg.memory_mb = 200;  // one pyaes container (128 MB) fits
  Worker w(rt_, cfg);
  auto f = w.register_function(pyaes());
  w.start();
  int done = 0;
  for (int i = 0; i < 3; ++i) {
    w.invoke(f, [&](const InvokeResult& r) {
      EXPECT_TRUE(r.success);
      ++done;
    });
  }
  rt_.run_for(secs(60));
  EXPECT_EQ(done, 3);  // they serialize through the single container
  w.shutdown();
}

TEST_F(WorkerTest, CreateFailureRetriesThenSucceeds) {
  WorkerConfig cfg = base_config();
  cfg.faults.create_failure_prob = 0.5;
  cfg.create_retries = 10;
  Worker w(rt_, cfg);
  auto f = w.register_function(pyaes());
  w.start();
  int ok = 0;
  for (int i = 0; i < 10; ++i) {
    w.invoke(f, [&](const InvokeResult& r) { ok += r.success ? 1 : 0; });
  }
  rt_.run_for(secs(120));
  EXPECT_EQ(ok, 10);
  w.shutdown();
}

TEST_F(WorkerTest, CreateFailureExhaustsRetriesAndFails) {
  WorkerConfig cfg = base_config();
  cfg.faults.create_failure_prob = 1.0;
  cfg.create_retries = 1;
  Worker w(rt_, cfg);
  auto f = w.register_function(pyaes());
  w.start();
  bool failed = false;
  w.invoke(f, [&](const InvokeResult& r) { failed = !r.success; });
  rt_.run_for(secs(30));
  EXPECT_TRUE(failed);
  EXPECT_EQ(w.failures(), 1u);
  w.shutdown();
}

TEST_F(WorkerTest, BypassShortFunctions) {
  WorkerConfig cfg = base_config();
  cfg.bypass_threshold = secs(1);  // pyaes warm 300 ms qualifies
  Worker w(rt_, cfg);
  auto f = w.register_function(pyaes());
  w.start();
  // First (cold) invocation: unknown characteristics -> no bypass. Second
  // invocation is the first *warm* one, establishing the warm-time window;
  // only the third can bypass.
  for (int i = 0; i < 2; ++i) {
    bool done = false;
    w.invoke(f, [&](const InvokeResult& r) {
      done = true;
      EXPECT_FALSE(r.bypassed);
    });
    rt_.run_for(secs(10));
    ASSERT_TRUE(done);
  }
  bool done = false;
  w.invoke(f, [&](const InvokeResult& r) {
    done = true;
    EXPECT_TRUE(r.bypassed);
  });
  rt_.run_for(secs(10));
  ASSERT_TRUE(done);
  EXPECT_EQ(w.bypassed(), 1u);
  w.shutdown();
}

TEST_F(WorkerTest, TtlPolicyExpiresIdleContainers) {
  WorkerConfig cfg = base_config();
  cfg.keepalive_policy = "TTL";
  Worker w(rt_, cfg);
  auto f = w.register_function(pyaes());
  w.start();
  bool done = false;
  w.invoke(f, [&](const InvokeResult&) { done = true; });
  rt_.run_for(secs(10));
  ASSERT_TRUE(done);
  EXPECT_EQ(w.pool().idle_count(), 1u);
  rt_.run_for(mins(12));
  EXPECT_EQ(w.pool().idle_count(), 0u);
  EXPECT_GE(w.pool().expirations(), 1u);
  w.shutdown();
}

TEST_F(WorkerTest, QueueWaitReportedUnderSaturation) {
  invoke_and_run(fn_);
  std::vector<InvokeResult> results;
  for (int i = 0; i < 32; ++i) {
    worker_.invoke(fn_, [&](const InvokeResult& r) { results.push_back(r); });
  }
  rt_.run_for(secs(60));
  ASSERT_EQ(results.size(), 32u);
  bool some_waited = false;
  for (const auto& r : results) {
    if (r.queue_wait > msecs(10)) some_waited = true;
  }
  EXPECT_TRUE(some_waited);
}

TEST_F(WorkerTest, DeterministicAcrossIdenticalRuns) {
  auto run_once = [](std::uint64_t seed) {
    SimRuntime rt;
    WorkerConfig cfg = base_config();
    cfg.seed = seed;
    Worker w(rt, cfg);
    auto f = w.register_function(pyaes());
    w.start();
    std::vector<std::int64_t> latencies;
    std::function<void(int)> chain = [&](int remaining) {
      if (remaining == 0) return;
      w.invoke(f, [&, remaining](const InvokeResult& r) {
        latencies.push_back(r.flow_time().count());
        chain(remaining - 1);
      });
    };
    chain(20);
    rt.run_for(secs(120));
    w.shutdown();
    return latencies;
  };
  auto a = run_once(5);
  auto b = run_once(5);
  EXPECT_EQ(a, b);
  auto c = run_once(6);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace ilu
