// Integration tests: the full worker control plane replaying workloads,
// exercising cross-module behaviour (queue + regulator + pool + netns +
// backend + characteristics) that unit tests cannot reach.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/energy.hpp"
#include "core/worker.hpp"
#include "runtime/sim_runtime.hpp"
#include "trace/function_profile.hpp"
#include "trace/loadgen.hpp"

namespace ilu {
namespace {

WorkerConfig small_cfg() {
  WorkerConfig cfg;
  cfg.cores = 8;
  cfg.memory_mb = 4096;
  cfg.seed = 2024;
  return cfg;
}

InvokeFn invoker(Worker& w) {
  return [&w](FunctionId fn, std::function<void(const InvokeResult&)> cb) {
    w.invoke(fn, std::move(cb));
  };
}

TEST(WorkerIntegration, TraceReplayCompletesEverything) {
  SimRuntime rt;
  Worker w(rt, small_cfg());
  std::vector<SyntheticFunctionSpec> specs;
  for (auto& p : function_bench()) {
    if (p.name == "video_encoding") continue;
    specs.push_back({.profile = p, .mean_iat = secs(3), .exponential = true});
  }
  auto trace = make_synthetic_trace(specs, mins(3), 5);
  for (const auto& f : trace.functions) w.register_function(f);
  w.start();

  OpenLoopDriver d(rt, invoker(w));
  d.start(trace);
  while (!d.done()) rt.run_for(secs(10));
  w.shutdown();

  EXPECT_EQ(d.results().size(), trace.events.size());
  std::size_t ok = 0;
  for (const auto& r : d.results()) ok += r.success;
  EXPECT_EQ(ok, trace.events.size());
  EXPECT_EQ(w.completed(), trace.events.size());
  EXPECT_EQ(w.warm_starts() + w.cold_starts(), trace.events.size());
}

TEST(WorkerIntegration, WarmRateGrowsOverTime) {
  SimRuntime rt;
  Worker w(rt, small_cfg());
  auto fn = w.register_function(pyaes());
  w.start();
  // 3-s cadence: longer than the ~2 s first cold start, so after the first
  // container exists every invocation is warm.
  std::vector<SyntheticFunctionSpec> specs{
      {.profile = w.profile(fn), .mean_iat = secs(3), .exponential = false}};
  auto trace = make_synthetic_trace(specs, mins(3), 6);
  OpenLoopDriver d(rt, invoker(w));
  d.start(trace);
  while (!d.done()) rt.run_for(secs(10));
  w.shutdown();
  EXPECT_EQ(w.cold_starts(), 1u);
  EXPECT_EQ(w.warm_starts(), trace.events.size() - 1);
}

TEST(WorkerIntegration, HistPolicyOnWorkerExpiresAndServes) {
  WorkerConfig cfg = small_cfg();
  cfg.keepalive_policy = "HIST";
  SimRuntime rt;
  Worker w(rt, cfg);
  auto fn = w.register_function(pyaes());
  w.start();
  int done = 0, warm_late = 0;
  // 12-minute cadence: under TTL this would always be cold; HIST learns
  // the cadence and (via the worker's predictive-prewarm wiring) brings
  // containers back before the predicted arrivals.
  for (int i = 0; i < 10; ++i) {
    rt.schedule(mins(12.0 * i), [&, i] {
      w.invoke(fn, [&, i](const InvokeResult& r) {
        EXPECT_TRUE(r.success);
        ++done;
        if (i >= 6 && !r.cold) ++warm_late;
      });
    });
  }
  rt.run_for(mins(130));
  w.shutdown();
  EXPECT_EQ(done, 10);
  EXPECT_GT(w.prewarms(), 0u);
  EXPECT_GT(warm_late, 0);
}

TEST(WorkerIntegration, EnergyMeterTracksWorkerLoad) {
  SimRuntime rt;
  Worker w(rt, small_cfg());
  EnergyMeter meter(8.0, {.idle_watts = 100.0, .max_watts = 260.0});
  w.cpu().set_demand_observer([&](TimePoint t, double d) {
    meter.on_demand_change(t, d);
  });
  auto fn = w.register_function(lookbusy(secs(2), 128, secs(1)));
  w.start();
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    w.invoke(fn, [&](const InvokeResult&) { ++done; });
  }
  rt.run_for(mins(1));
  w.shutdown();
  ASSERT_EQ(done, 4);
  double joules = meter.total_joules(mins(1));
  // Energy must exceed the idle floor (60 s x 100 W) by the active part.
  EXPECT_GT(joules, 6000.0);
  EXPECT_GT(meter.active_joules(mins(1)), 100.0);
  EXPECT_LT(joules, 260.0 * 60.0);
}

TEST(WorkerIntegration, SnapshotBackendCutsRepeatColdStarts) {
  WorkerConfig cfg = small_cfg();
  cfg.backend.snapshot_cold_starts = true;
  cfg.backend.snapshot_restore = LatencyModel::constant(msecs(60));
  cfg.keepalive_policy = "TTL";
  SimRuntime rt;
  Worker w(rt, cfg);
  auto fn = w.register_function(pyaes());
  w.start();
  std::vector<double> cold_overheads;
  int done = 0;
  std::function<void(int)> loop = [&](int remaining) {
    if (remaining == 0) return;
    w.invoke(fn, [&, remaining](const InvokeResult& r) {
      if (r.cold) cold_overheads.push_back(to_ms(r.overhead()));
      ++done;
      // Force the next start cold.
      w.pool().set_capacity_mb(0);
      w.pool().set_capacity_mb(4096);
      loop(remaining - 1);
    });
  };
  loop(4);
  while (done < 4) rt.run_for(secs(30));
  w.shutdown();
  ASSERT_EQ(cold_overheads.size(), 4u);
  // First cold pays the full create; later ones restore from snapshot.
  EXPECT_GT(cold_overheads[0], 300.0);
  for (std::size_t i = 1; i < cold_overheads.size(); ++i) {
    EXPECT_LT(cold_overheads[i], 200.0);
  }
}

TEST(WorkerIntegration, ParkedInvocationsPreserveFairness) {
  WorkerConfig cfg = small_cfg();
  cfg.memory_mb = 600;  // one 512 MB container at a time
  SimRuntime rt;
  Worker w(rt, cfg);
  auto fn = w.register_function(function_bench_app("ml_inference"));
  w.start();
  std::vector<int> completion_order;
  for (int i = 0; i < 4; ++i) {
    w.invoke(fn, [&, i](const InvokeResult& r) {
      EXPECT_TRUE(r.success);
      completion_order.push_back(i);
    });
  }
  rt.run_for(mins(10));
  w.shutdown();
  ASSERT_EQ(completion_order.size(), 4u);
  // All serialize through the single container; the first dispatch wins the
  // container, the rest drain through the memory-parking path (their
  // relative order depends on per-invocation span jitter).
  EXPECT_EQ(completion_order[0], 0);
  auto sorted = completion_order;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3}));
}

TEST(WorkerIntegration, InvokeFailureInjection) {
  WorkerConfig cfg = small_cfg();
  cfg.faults.invoke_failure_prob = 0.3;
  SimRuntime rt;
  Worker w(rt, cfg);
  auto fn = w.register_function(pyaes());
  w.start();
  int ok = 0, failed = 0, done = 0;
  std::function<void(int)> loop = [&](int remaining) {
    if (remaining == 0) return;
    w.invoke(fn, [&, remaining](const InvokeResult& r) {
      (r.success ? ok : failed)++;
      ++done;
      loop(remaining - 1);
    });
  };
  loop(100);
  while (done < 100) rt.run_for(secs(30));
  w.shutdown();
  EXPECT_EQ(ok + failed, 100);
  EXPECT_GT(failed, 10);
  EXPECT_GT(ok, 40);
  EXPECT_EQ(w.failures(), static_cast<std::uint64_t>(failed));
}

TEST(WorkerIntegration, AimdRegulatorAdaptsLimit) {
  WorkerConfig cfg = small_cfg();
  cfg.regulator.limit = 4;
  cfg.regulator.dynamic = true;
  cfg.regulator.interval = secs(1);
  cfg.regulator.max_limit = 64;
  SimRuntime rt;
  Worker w(rt, cfg);
  auto fn = w.register_function(lookbusy(msecs(200), 64, msecs(300)));
  w.start();
  // Light load: the limit should climb from 4 via additive increase.
  ClosedLoopDriver d(rt, invoker(w), fn, 2);
  d.start(200);
  while (!d.done()) rt.run_for(secs(5));
  EXPECT_GT(w.status().concurrency_limit, 10.0);
  w.shutdown();
}

/// Queue-policy sweep at the integration level: every discipline completes
/// the same workload with the same total count, deterministically.
class QueuePolicyIntegration : public ::testing::TestWithParam<const char*> {};

TEST_P(QueuePolicyIntegration, CompletesHeterogeneousWorkload) {
  WorkerConfig cfg = small_cfg();
  cfg.queue_policy = GetParam();
  cfg.regulator.limit = 4;
  SimRuntime rt;
  Worker w(rt, cfg);
  std::vector<SyntheticFunctionSpec> specs{
      {.profile = lookbusy(msecs(100), 64, msecs(200)),
       .mean_iat = msecs(400), .exponential = true},
      {.profile = lookbusy(secs(2), 128, secs(1)),
       .mean_iat = secs(3), .exponential = true},
  };
  auto trace = make_synthetic_trace(specs, mins(2), 8);
  for (const auto& f : trace.functions) w.register_function(f);
  w.start();
  OpenLoopDriver d(rt, invoker(w));
  d.start(trace);
  while (!d.done()) rt.run_for(secs(10));
  w.shutdown();
  EXPECT_EQ(d.results().size(), trace.events.size());
  for (const auto& r : d.results()) EXPECT_TRUE(r.success);
}

INSTANTIATE_TEST_SUITE_P(AllDisciplines, QueuePolicyIntegration,
                         ::testing::Values("FCFS", "SJF", "EEDF", "RARE"));

/// Keep-alive policy sweep at the worker level.
class KeepAliveIntegration : public ::testing::TestWithParam<const char*> {};

TEST_P(KeepAliveIntegration, PoolInvariantsHoldUnderChurn) {
  WorkerConfig cfg = small_cfg();
  cfg.keepalive_policy = GetParam();
  cfg.memory_mb = 1024;  // heavy eviction churn
  SimRuntime rt;
  Worker w(rt, cfg);
  std::vector<SyntheticFunctionSpec> specs;
  for (int i = 0; i < 8; ++i) {
    auto p = lookbusy(msecs(150), 192, msecs(400));
    p.name = "churn_" + std::to_string(i);
    specs.push_back(
        {.profile = p, .mean_iat = msecs(900), .exponential = true});
  }
  auto trace = make_synthetic_trace(specs, mins(2), 9);
  for (const auto& f : trace.functions) w.register_function(f);
  w.start();
  OpenLoopDriver d(rt, invoker(w));
  d.start(trace);
  while (!d.done()) {
    rt.run_for(secs(5));
    EXPECT_LE(w.pool().used_mb(), 1024u) << GetParam();
  }
  w.shutdown();
  EXPECT_EQ(d.results().size(), trace.events.size());
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, KeepAliveIntegration,
                         ::testing::Values("TTL", "LRU", "FREQ", "GD", "LND",
                                           "HIST"));

}  // namespace
}  // namespace ilu
