#include "core/config.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "runtime/sim_runtime.hpp"
#include "trace/function_profile.hpp"

namespace ilu {
namespace {

TEST(Config, WorkerDefaultsWhenEmpty) {
  auto cfg = worker_config_from_json(json_parse("{}"));
  WorkerConfig def;
  EXPECT_EQ(cfg.cores, def.cores);
  EXPECT_EQ(cfg.memory_mb, def.memory_mb);
  EXPECT_EQ(cfg.queue_policy, def.queue_policy);
  EXPECT_EQ(cfg.keepalive_policy, def.keepalive_policy);
}

TEST(Config, WorkerFullDocument) {
  auto cfg = worker_config_from_json(json_parse(R"({
    "name": "w7", "cores": 16, "memory_mb": 8192,
    "queue_policy": "SJF", "keepalive_policy": "LRU",
    "concurrency_limit": 32, "dynamic_concurrency": true,
    "congestion_threshold": 1.5,
    "bypass_ms": 250, "bypass_load_limit": 0.8,
    "backend": "crun", "netns_pool_size": 16,
    "free_buffer_mb": 512, "sweep_interval_ms": 200,
    "create_retries": 5, "tracing": false, "seed": 777
  })"));
  EXPECT_EQ(cfg.name, "w7");
  EXPECT_DOUBLE_EQ(cfg.cores, 16.0);
  EXPECT_EQ(cfg.memory_mb, 8192u);
  EXPECT_EQ(cfg.queue_policy, "SJF");
  EXPECT_EQ(cfg.keepalive_policy, "LRU");
  EXPECT_DOUBLE_EQ(cfg.regulator.limit, 32.0);
  EXPECT_TRUE(cfg.regulator.dynamic);
  EXPECT_DOUBLE_EQ(cfg.regulator.congestion_threshold, 1.5);
  EXPECT_EQ(cfg.bypass_threshold, msecs(250));
  EXPECT_DOUBLE_EQ(cfg.bypass_load_limit, 0.8);
  EXPECT_EQ(cfg.backend.name, "crun");
  EXPECT_EQ(cfg.netns.target_size, 16u);
  EXPECT_EQ(cfg.pool.free_buffer_mb, 512u);
  EXPECT_EQ(cfg.pool.sweep_interval, msecs(200));
  EXPECT_EQ(cfg.create_retries, 5);
  EXPECT_FALSE(cfg.tracing);
  EXPECT_EQ(cfg.seed, 777u);
}

TEST(Config, UnknownKeysIgnored) {
  auto cfg = worker_config_from_json(
      json_parse(R"({"cores": 4, "future_knob": [1,2,3]})"));
  EXPECT_DOUBLE_EQ(cfg.cores, 4.0);
}

TEST(Config, BadQueuePolicyRejectedAtLoad) {
  EXPECT_THROW(
      worker_config_from_json(json_parse(R"({"queue_policy":"LIFO"})")),
      std::invalid_argument);
}

TEST(Config, BadKeepalivePolicyRejectedAtLoad) {
  EXPECT_THROW(
      worker_config_from_json(json_parse(R"({"keepalive_policy":"MRU"})")),
      std::invalid_argument);
}

TEST(Config, BadBackendRejected) {
  EXPECT_THROW(
      worker_config_from_json(json_parse(R"({"backend":"podman"})")),
      std::invalid_argument);
}

TEST(Config, BackendProfilesByName) {
  EXPECT_EQ(backend_profile_by_name("containerd").name, "containerd");
  EXPECT_EQ(backend_profile_by_name("docker").name, "docker");
  EXPECT_EQ(backend_profile_by_name("crun").name, "crun");
  EXPECT_EQ(backend_profile_by_name("null").name, "null");
}

TEST(Config, WorkerRoundTrip) {
  WorkerConfig cfg;
  cfg.name = "rt";
  cfg.cores = 24;
  cfg.queue_policy = "RARE";
  cfg.keepalive_policy = "HIST";
  cfg.regulator.dynamic = true;
  cfg.bypass_threshold = msecs(100);
  auto again = worker_config_from_json(worker_config_to_json(cfg));
  EXPECT_EQ(again.name, "rt");
  EXPECT_DOUBLE_EQ(again.cores, 24.0);
  EXPECT_EQ(again.queue_policy, "RARE");
  EXPECT_EQ(again.keepalive_policy, "HIST");
  EXPECT_TRUE(again.regulator.dynamic);
  EXPECT_EQ(again.bypass_threshold, msecs(100));
}

TEST(Config, OpenWhiskDocument) {
  auto cfg = openwhisk_config_from_json(json_parse(R"({
    "cores": 8, "memory_mb": 2048, "keepalive_policy": "GD",
    "ttl_minutes": 5, "buffer_capacity": 64, "buffer_timeout_s": 10,
    "seed": 3
  })"));
  EXPECT_DOUBLE_EQ(cfg.cores, 8.0);
  EXPECT_EQ(cfg.keepalive_policy, "GD");
  EXPECT_EQ(cfg.keepalive_ttl, mins(5));
  EXPECT_EQ(cfg.buffer_capacity, 64u);
  EXPECT_EQ(cfg.buffer_timeout, secs(10));
}

TEST(Config, OpenWhiskRoundTrip) {
  OpenWhiskConfig cfg;
  cfg.keepalive_policy = "GD";
  cfg.buffer_capacity = 99;
  auto again = openwhisk_config_from_json(openwhisk_config_to_json(cfg));
  EXPECT_EQ(again.keepalive_policy, "GD");
  EXPECT_EQ(again.buffer_capacity, 99u);
}

TEST(Config, ClusterDocumentWithNestedWorker) {
  auto cfg = cluster_config_from_json(json_parse(R"({
    "num_workers": 6, "lb": "least", "bound_factor": 1.5,
    "worker": {"cores": 12, "keepalive_policy": "TTL"}
  })"));
  EXPECT_EQ(cfg.num_workers, 6u);
  EXPECT_EQ(cfg.lb, LbPolicy::LeastLoaded);
  EXPECT_DOUBLE_EQ(cfg.chbl.bound_factor, 1.5);
  EXPECT_DOUBLE_EQ(cfg.worker.cores, 12.0);
  EXPECT_EQ(cfg.worker.keepalive_policy, "TTL");
}

TEST(Config, ClusterBadLbRejected) {
  EXPECT_THROW(cluster_config_from_json(json_parse(R"({"lb":"magic"})")),
               std::invalid_argument);
}

TEST(Config, ClusterRoundTrip) {
  ClusterConfig cfg;
  cfg.num_workers = 3;
  cfg.lb = LbPolicy::RoundRobin;
  auto again = cluster_config_from_json(cluster_config_to_json(cfg));
  EXPECT_EQ(again.num_workers, 3u);
  EXPECT_EQ(again.lb, LbPolicy::RoundRobin);
}

TEST(Config, LoadWorkerConfigFromFile) {
  auto path = (std::filesystem::temp_directory_path() / "ilu_cfg_test.json")
                  .string();
  {
    std::ofstream out(path);
    out << R"({"cores": 2, "memory_mb": 1024})";
  }
  auto cfg = load_worker_config(path);
  EXPECT_DOUBLE_EQ(cfg.cores, 2.0);
  EXPECT_EQ(cfg.memory_mb, 1024u);
  std::remove(path.c_str());
}

TEST(Config, ConfiguredWorkerActuallyRuns) {
  SimRuntime rt;
  auto cfg = worker_config_from_json(json_parse(
      R"({"cores": 4, "memory_mb": 1024, "backend": "crun",
          "queue_policy": "FCFS", "keepalive_policy": "LRU"})"));
  Worker w(rt, cfg);
  auto fn = w.register_function(pyaes());
  w.start();
  bool done = false;
  w.invoke(fn, [&](const InvokeResult& r) {
    done = true;
    EXPECT_TRUE(r.success);
  });
  rt.run_for(secs(30));
  EXPECT_TRUE(done);
  w.shutdown();
}

}  // namespace
}  // namespace ilu
