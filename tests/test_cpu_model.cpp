#include "containers/cpu_model.hpp"

#include <gtest/gtest.h>

#include "runtime/sim_runtime.hpp"
#include "util/rng.hpp"

namespace ilu {
namespace {

TEST(CpuModel, SingleTaskRunsAtFullWeight) {
  SimRuntime rt;
  CpuModel cpu(rt, 4.0);
  TimePoint done{};
  cpu.submit(2.0, 1.0, [&] { done = rt.now(); });
  rt.run();
  EXPECT_EQ(done, secs(2));
}

TEST(CpuModel, UncontendedTasksDoNotSlowEachOther) {
  SimRuntime rt;
  CpuModel cpu(rt, 4.0);
  std::vector<TimePoint> done(3);
  for (int i = 0; i < 3; ++i) {
    cpu.submit(1.0, 1.0, [&, i] { done[i] = rt.now(); });
  }
  rt.run();
  for (auto d : done) EXPECT_EQ(d, secs(1));
}

TEST(CpuModel, OvercommitSlowsProportionally) {
  SimRuntime rt;
  CpuModel cpu(rt, 2.0);
  // 4 unit-weight tasks on 2 cores: each runs at rate 0.5 -> 1 s work takes 2 s.
  std::vector<TimePoint> done(4);
  for (int i = 0; i < 4; ++i) {
    cpu.submit(1.0, 1.0, [&, i] { done[i] = rt.now(); });
  }
  rt.run();
  for (auto d : done) {
    EXPECT_NEAR(to_sec(d), 2.0, 0.001);
  }
}

TEST(CpuModel, WeightsGiveProportionalAllocation) {
  SimRuntime rt;
  CpuModel cpu(rt, 1.0);
  // Weight 2 vs weight 1 on one core: rates 2/3 and 1/3.
  TimePoint heavy_done{}, light_done{};
  cpu.submit(1.0, 2.0, [&] { heavy_done = rt.now(); });
  cpu.submit(1.0, 1.0, [&] { light_done = rt.now(); });
  rt.run();
  // Heavy finishes at 1.5 s (rate 2/3); then light runs alone.
  EXPECT_NEAR(to_sec(heavy_done), 1.5, 0.001);
  // Light: 0.5 done in first 1.5 s at rate 1/3, remaining 0.5 at rate 1.
  EXPECT_NEAR(to_sec(light_done), 2.0, 0.001);
}

TEST(CpuModel, DeparturesSpeedUpRemainingWork) {
  SimRuntime rt;
  CpuModel cpu(rt, 1.0);
  TimePoint long_done{};
  cpu.submit(0.5, 1.0, [] {});                       // finishes first
  cpu.submit(1.0, 1.0, [&] { long_done = rt.now(); });
  rt.run();
  // Both at rate 0.5 until t=1 (short done, 0.5 work each); long then has
  // 0.5 left at rate 1 -> done at 1.5.
  EXPECT_NEAR(to_sec(long_done), 1.5, 0.001);
}

TEST(CpuModel, ConservationOfWork) {
  // Property: total completion time of any workload on C cores is at least
  // total_work / C, and tasks never finish early.
  SimRuntime rt;
  CpuModel cpu(rt, 3.0);
  double total_work = 0.0;
  TimePoint last{};
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    double work = rng.uniform(0.1, 2.0);
    total_work += work;
    cpu.submit(work, 1.0, [&] { last = std::max(last, rt.now()); });
  }
  rt.run();
  EXPECT_GE(to_sec(last) + 1e-6, total_work / 3.0);
}

TEST(CpuModel, ZeroWorkCompletesImmediately) {
  SimRuntime rt;
  CpuModel cpu(rt, 1.0);
  bool done = false;
  cpu.submit(0.0, 1.0, [&] { done = true; });
  rt.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(rt.now(), Duration::zero());
}

TEST(CpuModel, CancelPreventsCompletion) {
  SimRuntime rt;
  CpuModel cpu(rt, 1.0);
  bool fired = false;
  auto id = cpu.submit(5.0, 1.0, [&] { fired = true; });
  rt.schedule(secs(1), [&] { EXPECT_TRUE(cpu.cancel(id)); });
  rt.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(cpu.running(), 0u);
}

TEST(CpuModel, CancelUnknownReturnsFalse) {
  SimRuntime rt;
  CpuModel cpu(rt, 1.0);
  EXPECT_FALSE(cpu.cancel(123));
}

TEST(CpuModel, CancelSpeedsUpOthers) {
  SimRuntime rt;
  CpuModel cpu(rt, 1.0);
  TimePoint done{};
  auto victim = cpu.submit(10.0, 1.0, [] {});
  cpu.submit(1.0, 1.0, [&] { done = rt.now(); });
  rt.schedule(secs(1), [&] { cpu.cancel(victim); });
  rt.run();
  // 0.5 work done by t=1 (shared), then full speed: 0.5 more -> t=1.5.
  EXPECT_NEAR(to_sec(done), 1.5, 0.001);
}

TEST(CpuModel, DemandTracksRunningWeights) {
  SimRuntime rt;
  CpuModel cpu(rt, 8.0);
  cpu.submit(10.0, 2.0, [] {});
  cpu.submit(10.0, 1.5, [] {});
  EXPECT_DOUBLE_EQ(cpu.demand(), 3.5);
  EXPECT_EQ(cpu.running(), 2u);
}

TEST(CpuModel, LoadAverageConvergesUnderSteadyLoad) {
  SimRuntime rt;
  CpuModel cpu(rt, 4.0);
  // Hold demand at 4 for a long time.
  cpu.submit(4000.0, 4.0, [] {});
  rt.run_until(mins(10));
  EXPECT_NEAR(cpu.load_average(), 4.0, 0.05);
}

TEST(CpuModel, LoadAverageDecaysAfterIdle) {
  SimRuntime rt;
  CpuModel cpu(rt, 4.0);
  cpu.submit(40.0, 4.0, [] {});  // runs 10 s at weight 4... wait: rate=4
  rt.run_until(mins(5));
  double at_busy_end = cpu.load_average();
  rt.run_until(mins(30));
  EXPECT_LT(cpu.load_average(), at_busy_end);
  EXPECT_NEAR(cpu.load_average(), 0.0, 0.05);
}

TEST(CpuModel, EstimateReflectsContention) {
  SimRuntime rt;
  CpuModel cpu(rt, 1.0);
  EXPECT_EQ(cpu.estimate(1.0, 1.0), secs(1));
  cpu.submit(100.0, 1.0, [] {});
  // Adding a second unit-weight task: each gets 0.5 cores.
  EXPECT_EQ(cpu.estimate(1.0, 1.0), secs(2));
}

TEST(CpuModel, ManyTasksStressConsistency) {
  SimRuntime rt;
  CpuModel cpu(rt, 4.0);
  int completed = 0;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    rt.schedule(msecs(rng.uniform(0, 10000)), [&] {
      cpu.submit(rng.uniform(0.01, 0.5), rng.uniform(0.5, 2.0),
                 [&] { ++completed; });
    });
  }
  rt.run();
  EXPECT_EQ(completed, 500);
  EXPECT_EQ(cpu.running(), 0u);
  EXPECT_DOUBLE_EQ(cpu.demand(), 0.0);
}

}  // namespace
}  // namespace ilu
