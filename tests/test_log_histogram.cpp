// Log-bucketed histograms (obs/metrics): bounded relative error across the
// µs→s range, deterministic shard-count-independent merge, exact overflow
// tracking (for both LogHistogram and the fixed-width Histogram's new
// saturation fields), and registry snapshot/export plumbing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace ilu {
namespace {

double exact_percentile(std::vector<double> xs, double q) {
  std::sort(xs.begin(), xs.end());
  std::size_t idx = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(xs.size())));
  if (idx == 0) idx = 1;
  return xs[std::min(idx, xs.size()) - 1];
}

TEST(LogHistogram, EmptyIsZero) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0.0);
  EXPECT_EQ(h.observed_min(), 0.0);
  EXPECT_EQ(h.observed_max(), 0.0);
  EXPECT_FALSE(h.saturated());
}

TEST(LogHistogram, ResetReturnsToEmptyAndObservesAgain) {
  // The live-load harness reuses one stats block across sweep stages via
  // reset() between quiesced runs; a stale bucket or min/max would corrupt
  // every stage after the first.
  LogHistogram h;
  h.observe(0.5);
  h.observe(42.0);
  h.observe(4.0e5);  // overflow bucket too
  ASSERT_EQ(h.count(), 3u);
  ASSERT_EQ(h.overflow_count(), 1u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.overflow_count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.observed_min(), 0.0);
  EXPECT_DOUBLE_EQ(h.observed_max(), 0.0);
  // Fresh observations after reset behave exactly like a new histogram.
  h.observe(3.7);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 3.7);
  EXPECT_DOUBLE_EQ(h.observed_min(), 3.7);
  EXPECT_DOUBLE_EQ(h.observed_max(), 3.7);
}

TEST(LogHistogram, GeometryCoversConfiguredRange) {
  LogHistogram h;  // [1e-3, 1e5) ms, 32 subbuckets/octave
  EXPECT_EQ(h.subbuckets(), 32u);
  // log2(1e8) ≈ 26.6 → 27 octaves × 32 subbuckets.
  EXPECT_EQ(h.num_buckets(), 27u * 32u);
  EXPECT_GT(h.bucket_upper(h.num_buckets() - 1), 1e5 / 2);
}

/// The structural guarantee: any quantile upper bound is within one
/// subbucket (relative error ≤ 1/32) of the exact value, across five decades.
TEST(LogHistogram, BoundedRelativeErrorAcrossDecades) {
  LogHistogram h;
  std::vector<double> xs;
  Rng rng(42);
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform over [10 µs, 10 s] in ms units.
    double x = std::pow(10.0, rng.uniform(-2.0, 4.0));
    xs.push_back(x);
    h.observe(x);
  }
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    double exact = exact_percentile(xs, q);
    double approx = h.percentile(q);
    EXPECT_GE(approx, exact * (1.0 - 1e-9)) << "q=" << q;
    EXPECT_LE(approx, exact * (1.0 + 2.0 / 32.0)) << "q=" << q;
  }
  EXPECT_NEAR(h.observed_max(), *std::max_element(xs.begin(), xs.end()),
              1e-5);
  EXPECT_NEAR(h.observed_min(), *std::min_element(xs.begin(), xs.end()),
              1e-5);
}

TEST(LogHistogram, SingleValueIsExactViaObservedMax) {
  LogHistogram h;
  h.observe(3.7);
  // The percentile walk clamps to the exact observed max, so a single value
  // comes back exactly, not at a bucket edge.
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 3.7);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 3.7);
}

TEST(LogHistogram, UnderflowClampsToFirstBucket) {
  LogHistogram h;  // min 1e-3
  h.observe(1e-7);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_FALSE(h.saturated());
}

TEST(LogHistogram, OverflowIsTrackedExactly) {
  LogHistogram h;  // max 1e5
  h.observe(1.0);
  h.observe(2.5e5);
  h.observe(4.0e5);
  EXPECT_TRUE(h.saturated());
  EXPECT_EQ(h.overflow_count(), 2u);
  EXPECT_EQ(h.count(), 3u);
  // Tail quantiles land in the overflow region → the exact max, not a
  // bucket edge and not the range cap.
  EXPECT_DOUBLE_EQ(h.percentile(0.999), 4.0e5);
  EXPECT_DOUBLE_EQ(h.observed_max(), 4.0e5);
  // A quantile whose rank lands on the in-range value (rank ceil(0.3*3)=1)
  // is still served from the buckets.
  EXPECT_LE(h.percentile(0.3), 1.0 * (1.0 + 2.0 / 32.0));
}

/// Determinism contract: one stream split round-robin across k per-shard
/// histograms and merged must be bit-identical to the k=1 result, for any k
/// and any merge order.
TEST(LogHistogram, MergeIsShardCountInvariant) {
  std::vector<double> xs;
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    xs.push_back(std::pow(10.0, rng.uniform(-2.5, 4.5)));  // incl. overflow
  }
  LogHistogram reference;
  for (double x : xs) reference.observe(x);

  for (std::size_t k = 1; k <= 5; ++k) {
    std::vector<std::unique_ptr<LogHistogram>> shards;
    for (std::size_t s = 0; s < k; ++s) {
      shards.push_back(std::make_unique<LogHistogram>());
    }
    for (std::size_t i = 0; i < xs.size(); ++i) {
      shards[i % k]->observe(xs[i]);
    }
    LogHistogram merged;
    // Reverse order: the merge must be commutative.
    for (std::size_t s = k; s-- > 0;) {
      ASSERT_TRUE(merged.same_geometry(*shards[s]));
      merged.merge(*shards[s]);
    }
    EXPECT_EQ(merged.count(), reference.count()) << "k=" << k;
    EXPECT_EQ(merged.overflow_count(), reference.overflow_count());
    EXPECT_DOUBLE_EQ(merged.sum(), reference.sum()) << "k=" << k;
    EXPECT_DOUBLE_EQ(merged.observed_min(), reference.observed_min());
    EXPECT_DOUBLE_EQ(merged.observed_max(), reference.observed_max());
    for (double q : {0.5, 0.9, 0.99, 0.999}) {
      EXPECT_DOUBLE_EQ(merged.percentile(q), reference.percentile(q))
          << "k=" << k << " q=" << q;
    }
    for (std::size_t b = 0; b < merged.num_buckets(); ++b) {
      ASSERT_EQ(merged.bucket(b), reference.bucket(b)) << "bucket " << b;
    }
  }
}

// ---- fixed-width Histogram overflow (satellite) --------------------------

TEST(Histogram, OverflowKeepsExactMax) {
  Histogram h(1.0, 10);  // nominal range [0, 10)
  h.observe(2.0);
  h.observe(25.5);
  h.observe(17.0);
  EXPECT_TRUE(h.saturated());
  EXPECT_EQ(h.overflow_count(), 2u);
  EXPECT_DOUBLE_EQ(h.overflow_max(), 25.5);
  // The tail quantile reports the true max instead of flattening at the
  // final bucket edge (the pre-fix behaviour).
  EXPECT_DOUBLE_EQ(h.quantile_upper_bound(1.0), 25.5);
  EXPECT_DOUBLE_EQ(h.quantile_upper_bound(0.99), 25.5);
  // In-range quantiles are unaffected.
  EXPECT_DOUBLE_EQ(h.quantile_upper_bound(0.3), 3.0);
}

TEST(Histogram, UnsaturatedStaysBucketEdged) {
  Histogram h(1.0, 10);
  h.observe(2.5);
  EXPECT_FALSE(h.saturated());
  EXPECT_EQ(h.overflow_count(), 0u);
  EXPECT_DOUBLE_EQ(h.overflow_max(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile_upper_bound(1.0), 3.0);
}

// ---- registry + snapshot + export ----------------------------------------

TEST(MetricsRegistry, LogHistogramFindOrCreate) {
  MetricsRegistry reg;
  LogHistogram* a = reg.log_histogram("lat");
  LogHistogram* b = reg.log_histogram("lat", 1.0, 10.0);
  EXPECT_EQ(a, b) << "existing instrument (and its geometry) wins";
  a->observe(2.0);
  a->observe(5.0e5);  // overflow

  MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.log_histograms.count("lat"), 1u);
  const auto& d = snap.log_histograms.at("lat");
  EXPECT_EQ(d.count, 2u);
  EXPECT_TRUE(d.saturated);
  EXPECT_EQ(d.overflow_count, 1u);
  EXPECT_DOUBLE_EQ(d.max, 5.0e5);
  EXPECT_GT(d.p99, 0.0);
}

TEST(MetricsExport, JsonCarriesSaturationAndLogHistograms) {
  MetricsRegistry reg;
  Histogram* fixed = reg.histogram("fixed", 1.0, 4);
  fixed->observe(99.0);
  LogHistogram* lh = reg.log_histogram("wait_ms");
  lh->observe(0.25);

  JsonValue doc = metrics_json(reg.snapshot());
  std::string text = doc.dump();
  JsonValue parsed = json_parse(text);

  const JsonValue* hists = parsed.find("histograms");
  ASSERT_NE(hists, nullptr);
  const JsonValue* fx = hists->find("fixed");
  ASSERT_NE(fx, nullptr);
  EXPECT_TRUE(fx->find("saturated")->as_bool());
  EXPECT_DOUBLE_EQ(fx->find("overflow_max")->as_number(), 99.0);

  const JsonValue* lhs = parsed.find("log_histograms");
  ASSERT_NE(lhs, nullptr);
  const JsonValue* w = lhs->find("wait_ms");
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->find("count")->as_number(), 1.0);
  EXPECT_FALSE(w->find("saturated")->as_bool());
  EXPECT_DOUBLE_EQ(w->find("p50")->as_number(), 0.25);
}

TEST(MetricsExport, CsvCarriesLogHistogramRows) {
  MetricsRegistry reg;
  reg.log_histogram("lat_ms")->observe(1.5);
  std::string path = ::testing::TempDir() + "metrics_loghist.csv";
  write_metrics_csv(reg.snapshot(), path);
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  std::string csv = ss.str();
  EXPECT_NE(csv.find("lat_ms"), std::string::npos);
  EXPECT_NE(csv.find("p99"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ilu
