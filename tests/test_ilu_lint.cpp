// Tests for ilu-lint (tools/lint): every check must fire on its fixture,
// honor a reasoned allow() suppression, respect its path allowlist, and the
// real tree must lint clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lexer.hpp"
#include "lint/lint.hpp"

namespace {

using ilu::lint::Finding;
using ilu::lint::lint_file;
using ilu::lint::lint_tree;

std::string read_fixture(const std::string& name) {
  std::ifstream in(std::string(ILU_LINT_FIXTURE_DIR) + "/" + name);
  EXPECT_TRUE(in.good()) << "missing fixture " << name;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Lint fixture `name` as if it lived at `rel_path` under src/.
std::vector<Finding> lint_fixture_at(const std::string& name,
                                     const std::string& rel_path) {
  ilu::lint::FileInput in;
  in.rel_path = rel_path;
  in.content = read_fixture(name);
  return lint_file(in);
}

std::set<std::string> check_names(const std::vector<Finding>& fs) {
  std::set<std::string> out;
  for (const auto& f : fs) out.insert(f.check);
  return out;
}

int count_check(const std::vector<Finding>& fs, const std::string& check) {
  return static_cast<int>(std::count_if(
      fs.begin(), fs.end(),
      [&](const Finding& f) { return f.check == check; }));
}

TEST(IluLint, CatalogueListsAllChecks) {
  std::set<std::string> names;
  for (const auto& c : ilu::lint::checks()) names.insert(c.name);
  EXPECT_EQ(names, (std::set<std::string>{
                       "wall-clock", "unordered-iter", "ptr-order",
                       "raw-thread", "std-function-hotpath",
                       "const-ref-capture", "registry-lookup-hotpath",
                       "rollback-unsafe-effect", "lock-order",
                       "atomics-discipline", "blocking-under-lock",
                       "include-layering"}));
}

// ---- wall-clock ----------------------------------------------------------

TEST(IluLint, WallClockFires) {
  auto fs = lint_fixture_at("wall_clock.cpp", "core/fixture.cpp");
  EXPECT_EQ(count_check(fs, "wall-clock"), 4) << "clock::now x2, random_device, time()";
  EXPECT_EQ(check_names(fs), std::set<std::string>{"wall-clock"});
}

TEST(IluLint, WallClockSuppressed) {
  auto fs = lint_fixture_at("wall_clock_suppressed.cpp", "core/fixture.cpp");
  EXPECT_TRUE(fs.empty()) << fs.size() << " unsuppressed finding(s)";
}

TEST(IluLint, WallClockAllowlistedPaths) {
  // The real-time runtime, the RNG seed helper, the sweep driver, and the
  // observability layer legitimately read the wall clock.
  for (const char* path :
       {"runtime/real_runtime.cpp", "util/rng.cpp", "exp/sweep.cpp",
        "obs/metrics.cpp"}) {
    auto fs = lint_fixture_at("wall_clock.cpp", path);
    EXPECT_EQ(count_check(fs, "wall-clock"), 0) << "at " << path;
  }
}

TEST(IluLint, WallClockAnnotatedAllowTierStillFires) {
  // exp/live_load.* is NOT a blanket allowlist: unannotated wall-clock reads
  // still fire, and the message directs the author to the per-site
  // reasoned-annotation policy instead of the blanket ban.
  auto fs = lint_fixture_at("wall_clock.cpp", "exp/live_load.cpp");
  EXPECT_EQ(count_check(fs, "wall-clock"), 4);
  for (const auto& f : fs) {
    EXPECT_NE(f.message.find("annotated-allow tier"), std::string::npos)
        << f.message;
  }
}

TEST(IluLint, WallClockAnnotatedAllowTierCleanWhenAnnotated) {
  // With a reasoned allow(wall-clock) on every site, the tier lints clean —
  // exactly how the real harness' completion watchdog is written.
  auto fs =
      lint_fixture_at("wall_clock_live_harness.cpp", "exp/live_load.cpp");
  EXPECT_TRUE(fs.empty()) << fs.size() << " unsuppressed finding(s)";
}

TEST(IluLint, WallClockAnnotatedTierOutsideItIsUnaffected) {
  // The same annotated fixture at a banned path still lints clean (generic
  // suppression), and the tier suffix never leaks into ordinary findings.
  auto clean = lint_fixture_at("wall_clock_live_harness.cpp",
                               "core/fixture.cpp");
  EXPECT_TRUE(clean.empty());
  auto fs = lint_fixture_at("wall_clock.cpp", "core/fixture.cpp");
  for (const auto& f : fs) {
    EXPECT_EQ(f.message.find("annotated-allow tier"), std::string::npos)
        << f.message;
  }
}

// ---- unordered-iter ------------------------------------------------------

TEST(IluLint, UnorderedIterFires) {
  auto fs = lint_fixture_at("unordered_iter.cpp", "core/fixture.cpp");
  EXPECT_EQ(count_check(fs, "unordered-iter"), 3)
      << "two range-fors plus one .begin() loop";
}

TEST(IluLint, UnorderedIterSuppressed) {
  auto fs =
      lint_fixture_at("unordered_iter_suppressed.cpp", "core/fixture.cpp");
  EXPECT_TRUE(fs.empty());
}

TEST(IluLint, UnorderedIterAllowlistedPaths) {
  // Outside sim-reachable code (obs/, util/, exp/) iteration order feeds
  // only diagnostics, so the check stays quiet.
  for (const char* path :
       {"obs/fixture.cpp", "util/fixture.cpp", "exp/fixture.cpp"}) {
    auto fs = lint_fixture_at("unordered_iter.cpp", path);
    EXPECT_EQ(count_check(fs, "unordered-iter"), 0) << "at " << path;
  }
}

TEST(IluLint, UnorderedIterResolvesThroughPairedHeader) {
  ilu::lint::FileInput in;
  in.rel_path = "core/member.cpp";
  in.paired_header =
      "#include <unordered_map>\n"
      "class C {\n"
      "  std::unordered_map<int, int> by_id_;\n"
      "};\n";
  in.content =
      "#include \"core/member.hpp\"\n"
      "int C_sum(C& c) {\n"
      "  int s = 0;\n"
      "  for (auto& kv : by_id_) s += kv.second;\n"
      "  return s;\n"
      "}\n";
  auto fs = lint_file(in);
  EXPECT_EQ(count_check(fs, "unordered-iter"), 1)
      << "member declared in the paired header must still resolve";
}

// ---- ptr-order -----------------------------------------------------------

TEST(IluLint, PtrOrderFires) {
  auto fs = lint_fixture_at("ptr_order.cpp", "core/fixture.cpp");
  EXPECT_EQ(count_check(fs, "ptr-order"), 3)
      << "set<Node*>, map<const Node*,..>, multiset<int*> — value-typed "
         "containers stay clean";
}

TEST(IluLint, PtrOrderSuppressed) {
  auto fs = lint_fixture_at("ptr_order_suppressed.cpp", "core/fixture.cpp");
  EXPECT_TRUE(fs.empty());
}

TEST(IluLint, PtrOrderHasNoAllowlistedPaths) {
  // Pointer-keyed ordering is nondeterministic wherever it appears.
  auto fs = lint_fixture_at("ptr_order.cpp", "obs/fixture.cpp");
  EXPECT_EQ(count_check(fs, "ptr-order"), 3);
}

// ---- raw-thread ----------------------------------------------------------

TEST(IluLint, RawThreadFires) {
  auto fs = lint_fixture_at("raw_thread.cpp", "core/fixture.cpp");
  EXPECT_GE(count_check(fs, "raw-thread"), 3)
      << "atomic, mutex, thread (and the lock_guard's mutex argument)";
}

TEST(IluLint, RawThreadSuppressed) {
  auto fs = lint_fixture_at("raw_thread_suppressed.cpp", "core/fixture.cpp");
  EXPECT_TRUE(fs.empty());
}

TEST(IluLint, RawThreadAllowlistedPaths) {
  for (const char* path :
       {"runtime/sharded_runtime.cpp", "exp/sweep.cpp", "obs/tracer.cpp",
        "util/log.cpp", "util/dcheck.hpp"}) {
    auto fs = lint_fixture_at("raw_thread.cpp", path);
    EXPECT_EQ(count_check(fs, "raw-thread"), 0) << "at " << path;
  }
}

// ---- std-function-hotpath ------------------------------------------------

TEST(IluLint, StdFunctionHotpathFires) {
  for (const char* path : {"runtime/fixture.hpp", "queueing/fixture.hpp",
                           "core/fixture.hpp"}) {
    auto fs = lint_fixture_at("std_function_hotpath.hpp", path);
    EXPECT_EQ(count_check(fs, "std-function-hotpath"), 2) << "at " << path;
  }
}

TEST(IluLint, StdFunctionHotpathSuppressed) {
  auto fs = lint_fixture_at("std_function_hotpath_suppressed.hpp",
                            "core/fixture.hpp");
  EXPECT_TRUE(fs.empty());
}

TEST(IluLint, StdFunctionHotpathScopedToHotHeaders) {
  // Non-hot-path headers and .cpp files may use std::function freely.
  for (const char* path : {"exp/fixture.hpp", "obs/fixture.hpp",
                           "util/fixture.hpp", "core/fixture.cpp"}) {
    auto fs = lint_fixture_at("std_function_hotpath.hpp", path);
    EXPECT_EQ(count_check(fs, "std-function-hotpath"), 0) << "at " << path;
  }
}

// ---- const-ref-capture ---------------------------------------------------

TEST(IluLint, ConstRefCaptureFires) {
  auto fs = lint_fixture_at("const_ref_capture.cpp", "core/fixture.cpp");
  EXPECT_EQ(count_check(fs, "const-ref-capture"), 5)
      << "one returned, two deferred, two stored; value captures, "
         "address-of init-captures, std::sort callbacks, and IIFEs stay "
         "clean";
  EXPECT_EQ(check_names(fs), std::set<std::string>{"const-ref-capture"});
}

TEST(IluLint, ConstRefCaptureSuppressed) {
  auto fs = lint_fixture_at("const_ref_capture_suppressed.cpp",
                            "core/fixture.cpp");
  EXPECT_TRUE(fs.empty());
}

TEST(IluLint, ConstRefCaptureExemptsSweepMachinery) {
  // exp/ fans ref-capturing jobs into worker threads and joins them before
  // the scope exits, by design.
  auto fs = lint_fixture_at("const_ref_capture.cpp", "exp/fixture.cpp");
  EXPECT_EQ(count_check(fs, "const-ref-capture"), 0);
}

// ---- registry-lookup-hotpath ---------------------------------------------

TEST(IluLint, RegistryLookupHotpathFires) {
  auto fs =
      lint_fixture_at("registry_lookup_hotpath.cpp", "core/fixture.cpp");
  EXPECT_EQ(count_check(fs, "registry-lookup-hotpath"), 4)
      << "counter/gauge/histogram/log_histogram literal lookups in lambdas; "
         "wiring-time lookup and dynamic-name lookup stay clean";
  EXPECT_EQ(check_names(fs),
            std::set<std::string>{"registry-lookup-hotpath"});
}

TEST(IluLint, RegistryLookupHotpathSuppressed) {
  auto fs = lint_fixture_at("registry_lookup_hotpath_suppressed.cpp",
                            "core/fixture.cpp");
  EXPECT_TRUE(fs.empty());
}

TEST(IluLint, RegistryLookupHotpathExemptsObsAndExp) {
  // The obs layer owns the registry; exp/ sweep jobs wire fresh panels per
  // run inside their job lambdas.
  for (const char* path : {"obs/fixture.cpp", "exp/fixture.cpp"}) {
    auto fs = lint_fixture_at("registry_lookup_hotpath.cpp", path);
    EXPECT_EQ(count_check(fs, "registry-lookup-hotpath"), 0) << "at " << path;
  }
}

TEST(IluLint, RegistryLookupHotpathIgnoresTopLevelLookups) {
  ilu::lint::FileInput in;
  in.rel_path = "core/fixture.cpp";
  in.content =
      "void wire(Registry& reg) {\n"
      "  auto* c = reg.counter(\"pool.hits\");\n"
      "  auto* h = reg.log_histogram(\"wait_ms\");\n"
      "}\n";
  auto fs = lint_file(in);
  EXPECT_TRUE(fs.empty()) << "wiring-time lookups outside lambdas are fine";
}

// ---- rollback-unsafe-effect ----------------------------------------------

TEST(IluLint, RollbackUnsafeEffectFires) {
  auto fs = lint_fixture_at("rollback_unsafe_effect.cpp", "core/fixture.cpp");
  EXPECT_EQ(count_check(fs, "rollback-unsafe-effect"), 4)
      << "two undeclared metric mutations, log_info, printf; the declared "
         "flight::record and the by-value g.set() stay clean";
  EXPECT_EQ(check_names(fs), std::set<std::string>{"rollback-unsafe-effect"});
}

TEST(IluLint, RollbackUnsafeEffectSuppressed) {
  auto fs = lint_fixture_at("rollback_unsafe_effect_suppressed.cpp",
                            "core/fixture.cpp");
  EXPECT_TRUE(fs.empty()) << fs.size() << " unsuppressed finding(s)";
}

TEST(IluLint, RollbackUnsafeEffectQuietWithoutZonePragma) {
  // The check is armed by the pragma, not by path: files outside any
  // speculative zone may record and count freely.
  ilu::lint::FileInput in;
  in.rel_path = "core/fixture.cpp";
  in.content =
      "void on_complete(int fn) {\n"
      "  flight::record(1, 2, fn);\n"
      "  completions_->inc();\n"
      "}\n";
  EXPECT_TRUE(lint_file(in).empty());
}

TEST(IluLint, RollbackUnsafeEffectLogChannelNotDeclarable) {
  // Declaring the log channel rollback-safe is a grammar error, reported
  // under the unsuppressible lint-suppression name.
  ilu::lint::FileInput in;
  in.rel_path = "core/fixture.cpp";
  in.content =
      "// ilu-lint: speculative-zone(log) - wishful thinking\n"
      "int x;\n";
  auto fs = lint_file(in);
  ASSERT_EQ(count_check(fs, "lint-suppression"), 1);
  EXPECT_NE(fs.front().message.find("log channel"), std::string::npos)
      << fs.front().message;
}

TEST(IluLint, RollbackUnsafeEffectUnknownChannelIsMalformed) {
  ilu::lint::FileInput in;
  in.rel_path = "core/fixture.cpp";
  in.content =
      "// ilu-lint: speculative-zone(flight, tracing) - no such channel\n"
      "int x;\n";
  auto fs = lint_file(in);
  ASSERT_EQ(count_check(fs, "lint-suppression"), 1);
  EXPECT_NE(fs.front().message.find("tracing"), std::string::npos);
}

TEST(IluLint, RollbackUnsafeEffectReasonRequired) {
  ilu::lint::FileInput in;
  in.rel_path = "core/fixture.cpp";
  in.content =
      "// ilu-lint: speculative-zone(flight)\n"
      "int x;\n";
  auto fs = lint_file(in);
  EXPECT_EQ(count_check(fs, "lint-suppression"), 1);
}

// ---- suppression grammar -------------------------------------------------

TEST(IluLint, MalformedSuppressionIsItselfAFinding) {
  auto fs = lint_fixture_at("bad_suppression.cpp", "core/fixture.cpp");
  // Two malformed allow() comments + the wall-clock finding the first one
  // failed to suppress (the second precedes a line whose finding it would
  // not have matched anyway).
  EXPECT_EQ(count_check(fs, "lint-suppression"), 2);
  EXPECT_GE(count_check(fs, "wall-clock"), 1)
      << "a malformed allow() must not suppress";
}

// ---- lexer regressions ---------------------------------------------------

TEST(IluLint, LexerDigitSeparatorsAreOneNumber) {
  auto lr = ilu::lint::lex("int x = 1'024 + 0xff'00;");
  int numbers = 0;
  for (const auto& t : lr.tokens) {
    if (t.kind == ilu::lint::Tok::Number) ++numbers;
    EXPECT_NE(t.kind, ilu::lint::Tok::CharLit)
        << "digit separator mis-lexed as char literal: " << t.text;
  }
  EXPECT_EQ(numbers, 2);
}

TEST(IluLint, LexerRawStringsAreOpaque) {
  auto lr = ilu::lint::lex(
      "const char* s = R\"(std::chrono::steady_clock::now())\";\n"
      "int after = 1;\n");
  for (const auto& t : lr.tokens) {
    EXPECT_NE(t.text, "chrono") << "raw string contents leaked as tokens";
  }
  // `after` must still be seen, on the right line.
  bool saw_after = false;
  for (const auto& t : lr.tokens) {
    if (t.text == "after") {
      saw_after = true;
      EXPECT_EQ(t.line, 2);
    }
  }
  EXPECT_TRUE(saw_after);
}

TEST(IluLint, LexerRawStringInsideDirectiveDoesNotLeak) {
  auto lr = ilu::lint::lex(
      "#define SQL R\"(select \"x\" from t)\"\n"
      "int live = 3;\n");
  for (const auto& t : lr.tokens) {
    EXPECT_NE(t.text, "select") << "directive raw string leaked";
    EXPECT_NE(t.text, "from") << "directive raw string leaked";
  }
  ASSERT_EQ(lr.tokens.size(), 5u);  // int live = 3 ;
  EXPECT_EQ(lr.tokens[1].text, "live");
  EXPECT_EQ(lr.tokens[1].line, 2);
}

TEST(IluLint, LexerSplicedStringKeepsLineNumbers) {
  auto lr = ilu::lint::lex(
      "const char* s = \"a\\\n"
      "b\";\n"
      "int third = 1;\n");
  for (const auto& t : lr.tokens) {
    if (t.text == "third") EXPECT_EQ(t.line, 3);
  }
}

// ---- cross-TU fixture trees ----------------------------------------------

/// Load `names` out of tests/lint_fixtures/<tree>/, lint them as one batch.
std::vector<Finding> lint_tree_fixture(const std::string& tree,
                                       const std::vector<std::string>& names) {
  std::vector<ilu::lint::FileInput> ins;
  for (const auto& n : names) {
    ilu::lint::FileInput in;
    in.rel_path = n;
    in.content = read_fixture(tree + "/" + n);
    ins.push_back(std::move(in));
  }
  return ilu::lint::lint_inputs(ins);
}

TEST(IluLint, LockOrderCycleAcrossTwoTUs) {
  const std::vector<std::string> files = {"runtime/alpha.cpp",
                                          "runtime/beta.cpp"};
  auto fs = lint_tree_fixture("tree_lock_cycle", files);
  ASSERT_EQ(count_check(fs, "lock-order"), 1) << "one inversion, one finding";
  const Finding& f = fs.front();
  EXPECT_EQ(f.check, "lock-order");
  // Both witness paths are printed, naming each acquisition site.
  EXPECT_NE(f.message.find("runtime/alpha.cpp::g_alpha_mu"),
            std::string::npos);
  EXPECT_NE(f.message.find("runtime/beta.cpp::g_beta_mu"),
            std::string::npos);
  EXPECT_NE(f.message.find("beta_leaf"), std::string::npos);
  EXPECT_NE(f.message.find("alpha_leaf"), std::string::npos);
  // Deterministic: same inputs, byte-identical output — in both orders.
  auto again = lint_tree_fixture("tree_lock_cycle", files);
  ASSERT_EQ(again.size(), fs.size());
  EXPECT_EQ(again.front().message, f.message);
  EXPECT_EQ(again.front().path, f.path);
  EXPECT_EQ(again.front().line, f.line);
  auto reversed = lint_tree_fixture(
      "tree_lock_cycle", {"runtime/beta.cpp", "runtime/alpha.cpp"});
  ASSERT_EQ(reversed.size(), fs.size());
  EXPECT_EQ(reversed.front().message, f.message)
      << "witness must not depend on input order";
}

TEST(IluLint, LockOrderSingleTUSeesNoCycle) {
  // --file-mode degradation: either TU alone holds only one order.
  for (const char* one : {"runtime/alpha.cpp", "runtime/beta.cpp"}) {
    auto fs = lint_tree_fixture("tree_lock_cycle", {one});
    EXPECT_EQ(count_check(fs, "lock-order"), 0) << one;
  }
}

TEST(IluLint, LayeringBackEdgeAndCycle) {
  auto fs = lint_tree_fixture(
      "tree_layering",
      {"util/helper.hpp", "core/engine.hpp", "core/other.hpp"});
  ASSERT_EQ(count_check(fs, "include-layering"), 2);
  // Sorted by path: the core/ include cycle first, then the util/ back-edge.
  EXPECT_EQ(fs[0].path, "core/engine.hpp");
  EXPECT_NE(fs[0].message.find("include cycle"), std::string::npos);
  EXPECT_NE(fs[0].message.find("core/engine.hpp"), std::string::npos);
  EXPECT_NE(fs[0].message.find("core/other.hpp"), std::string::npos);
  EXPECT_EQ(fs[1].path, "util/helper.hpp");
  EXPECT_EQ(fs[1].line, 5);
  EXPECT_NE(fs[1].message.find("back-edge"), std::string::npos);
}

TEST(IluLint, AtomicsFloorViolationAndMissingFloor) {
  auto fs = lint_tree_fixture(
      "tree_atomics_floor", {"runtime/counter.hpp", "runtime/nofloor.hpp"});
  ASSERT_EQ(count_check(fs, "atomics-discipline"), 2);
  EXPECT_EQ(fs[0].path, "runtime/counter.hpp");
  EXPECT_EQ(fs[0].line, 14);
  EXPECT_NE(fs[0].message.find("memory_order_relaxed"), std::string::npos);
  EXPECT_NE(fs[0].message.find("below this file's declared atomics floor"),
            std::string::npos);
  EXPECT_EQ(fs[1].path, "runtime/nofloor.hpp");
  EXPECT_NE(fs[1].message.find("declares no ordering floor"),
            std::string::npos);
}

TEST(IluLint, AtomicsImplicitOpsPassTheFloor) {
  // Implicit operations are seq_cst — never below any floor. The acquire
  // load in counter.hpp also passes its own floor.
  ilu::lint::FileInput in;
  in.rel_path = "runtime/fixture.hpp";
  in.content =
      "// ilu-lint: atomics-floor(seq_cst) - fixture\n"
      "#include <atomic>\n"
      "std::atomic<int> g_n{0};\n"
      "int f() { return g_n.fetch_add(1) + g_n.load(); }\n";
  EXPECT_TRUE(lint_file(in).empty());
}

TEST(IluLint, AtomicsOutsideZoneWithoutPragmaFires) {
  ilu::lint::FileInput in;
  in.rel_path = "core/fixture.cpp";
  in.content =
      "#include <atomic>\n"
      "std::atomic<int> g_n{0};\n"
      "int f() { return g_n.load(); }\n";
  auto fs = lint_file(in);
  EXPECT_EQ(count_check(fs, "atomics-discipline"), 1);
  for (const auto& f : fs) {
    if (f.check != "atomics-discipline") continue;
    EXPECT_NE(f.message.find("outside the concurrency zone"),
              std::string::npos);
  }
}

TEST(IluLint, BlockingUnderLockFires) {
  auto fs = lint_tree_fixture("tree_alloc_under_lock", {"runtime/pool.cpp"});
  ASSERT_EQ(count_check(fs, "blocking-under-lock"), 1);
  const Finding& f = fs.front();
  EXPECT_EQ(f.line, 8);
  EXPECT_NE(f.message.find("push_back"), std::string::npos);
  EXPECT_NE(f.message.find("Pool::mu_"), std::string::npos);
}

TEST(IluLint, BlockingUnderLockHonorsSuppression) {
  ilu::lint::FileInput in;
  in.rel_path = "runtime/fixture.cpp";
  in.content =
      "#include <mutex>\n"
      "#include <vector>\n"
      "struct P {\n"
      "  void add(int v) {\n"
      "    std::lock_guard<std::mutex> lk(mu_);\n"
      "    // ilu-lint: allow(blocking-under-lock) - bounded, drained each tick\n"
      "    items_.push_back(v);\n"
      "  }\n"
      "  std::mutex mu_;\n"
      "  std::vector<int> items_;\n"
      "};\n";
  EXPECT_TRUE(lint_file(in).empty());
}

// ---- whole tree ----------------------------------------------------------

TEST(IluLint, RealTreeIsClean) {
  std::size_t files = 0;
  auto fs = lint_tree(std::string(ILU_SOURCE_DIR) + "/src", &files);
  EXPECT_GT(files, 50u) << "tree walk found suspiciously few files";
  for (const auto& f : fs) {
    ADD_FAILURE() << f.path << ":" << f.line << ": [" << f.check << "] "
                  << f.message;
  }
}

}  // namespace
