// Tests for ilu-lint (tools/lint): every check must fire on its fixture,
// honor a reasoned allow() suppression, respect its path allowlist, and the
// real tree must lint clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace {

using ilu::lint::Finding;
using ilu::lint::lint_file;
using ilu::lint::lint_tree;

std::string read_fixture(const std::string& name) {
  std::ifstream in(std::string(ILU_LINT_FIXTURE_DIR) + "/" + name);
  EXPECT_TRUE(in.good()) << "missing fixture " << name;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Lint fixture `name` as if it lived at `rel_path` under src/.
std::vector<Finding> lint_fixture_at(const std::string& name,
                                     const std::string& rel_path) {
  ilu::lint::FileInput in;
  in.rel_path = rel_path;
  in.content = read_fixture(name);
  return lint_file(in);
}

std::set<std::string> check_names(const std::vector<Finding>& fs) {
  std::set<std::string> out;
  for (const auto& f : fs) out.insert(f.check);
  return out;
}

int count_check(const std::vector<Finding>& fs, const std::string& check) {
  return static_cast<int>(std::count_if(
      fs.begin(), fs.end(),
      [&](const Finding& f) { return f.check == check; }));
}

TEST(IluLint, CatalogueListsAllChecks) {
  std::set<std::string> names;
  for (const auto& c : ilu::lint::checks()) names.insert(c.name);
  EXPECT_EQ(names, (std::set<std::string>{
                       "wall-clock", "unordered-iter", "ptr-order",
                       "raw-thread", "std-function-hotpath",
                       "const-ref-capture", "registry-lookup-hotpath"}));
}

// ---- wall-clock ----------------------------------------------------------

TEST(IluLint, WallClockFires) {
  auto fs = lint_fixture_at("wall_clock.cpp", "core/fixture.cpp");
  EXPECT_EQ(count_check(fs, "wall-clock"), 4) << "clock::now x2, random_device, time()";
  EXPECT_EQ(check_names(fs), std::set<std::string>{"wall-clock"});
}

TEST(IluLint, WallClockSuppressed) {
  auto fs = lint_fixture_at("wall_clock_suppressed.cpp", "core/fixture.cpp");
  EXPECT_TRUE(fs.empty()) << fs.size() << " unsuppressed finding(s)";
}

TEST(IluLint, WallClockAllowlistedPaths) {
  // The real-time runtime, the RNG seed helper, the sweep driver, and the
  // observability layer legitimately read the wall clock.
  for (const char* path :
       {"runtime/real_runtime.cpp", "util/rng.cpp", "exp/sweep.cpp",
        "obs/metrics.cpp"}) {
    auto fs = lint_fixture_at("wall_clock.cpp", path);
    EXPECT_EQ(count_check(fs, "wall-clock"), 0) << "at " << path;
  }
}

TEST(IluLint, WallClockAnnotatedAllowTierStillFires) {
  // exp/live_load.* is NOT a blanket allowlist: unannotated wall-clock reads
  // still fire, and the message directs the author to the per-site
  // reasoned-annotation policy instead of the blanket ban.
  auto fs = lint_fixture_at("wall_clock.cpp", "exp/live_load.cpp");
  EXPECT_EQ(count_check(fs, "wall-clock"), 4);
  for (const auto& f : fs) {
    EXPECT_NE(f.message.find("annotated-allow tier"), std::string::npos)
        << f.message;
  }
}

TEST(IluLint, WallClockAnnotatedAllowTierCleanWhenAnnotated) {
  // With a reasoned allow(wall-clock) on every site, the tier lints clean —
  // exactly how the real harness' completion watchdog is written.
  auto fs =
      lint_fixture_at("wall_clock_live_harness.cpp", "exp/live_load.cpp");
  EXPECT_TRUE(fs.empty()) << fs.size() << " unsuppressed finding(s)";
}

TEST(IluLint, WallClockAnnotatedTierOutsideItIsUnaffected) {
  // The same annotated fixture at a banned path still lints clean (generic
  // suppression), and the tier suffix never leaks into ordinary findings.
  auto clean = lint_fixture_at("wall_clock_live_harness.cpp",
                               "core/fixture.cpp");
  EXPECT_TRUE(clean.empty());
  auto fs = lint_fixture_at("wall_clock.cpp", "core/fixture.cpp");
  for (const auto& f : fs) {
    EXPECT_EQ(f.message.find("annotated-allow tier"), std::string::npos)
        << f.message;
  }
}

// ---- unordered-iter ------------------------------------------------------

TEST(IluLint, UnorderedIterFires) {
  auto fs = lint_fixture_at("unordered_iter.cpp", "core/fixture.cpp");
  EXPECT_EQ(count_check(fs, "unordered-iter"), 3)
      << "two range-fors plus one .begin() loop";
}

TEST(IluLint, UnorderedIterSuppressed) {
  auto fs =
      lint_fixture_at("unordered_iter_suppressed.cpp", "core/fixture.cpp");
  EXPECT_TRUE(fs.empty());
}

TEST(IluLint, UnorderedIterAllowlistedPaths) {
  // Outside sim-reachable code (obs/, util/, exp/) iteration order feeds
  // only diagnostics, so the check stays quiet.
  for (const char* path :
       {"obs/fixture.cpp", "util/fixture.cpp", "exp/fixture.cpp"}) {
    auto fs = lint_fixture_at("unordered_iter.cpp", path);
    EXPECT_EQ(count_check(fs, "unordered-iter"), 0) << "at " << path;
  }
}

TEST(IluLint, UnorderedIterResolvesThroughPairedHeader) {
  ilu::lint::FileInput in;
  in.rel_path = "core/member.cpp";
  in.paired_header =
      "#include <unordered_map>\n"
      "class C {\n"
      "  std::unordered_map<int, int> by_id_;\n"
      "};\n";
  in.content =
      "#include \"core/member.hpp\"\n"
      "int C_sum(C& c) {\n"
      "  int s = 0;\n"
      "  for (auto& kv : by_id_) s += kv.second;\n"
      "  return s;\n"
      "}\n";
  auto fs = lint_file(in);
  EXPECT_EQ(count_check(fs, "unordered-iter"), 1)
      << "member declared in the paired header must still resolve";
}

// ---- ptr-order -----------------------------------------------------------

TEST(IluLint, PtrOrderFires) {
  auto fs = lint_fixture_at("ptr_order.cpp", "core/fixture.cpp");
  EXPECT_EQ(count_check(fs, "ptr-order"), 3)
      << "set<Node*>, map<const Node*,..>, multiset<int*> — value-typed "
         "containers stay clean";
}

TEST(IluLint, PtrOrderSuppressed) {
  auto fs = lint_fixture_at("ptr_order_suppressed.cpp", "core/fixture.cpp");
  EXPECT_TRUE(fs.empty());
}

TEST(IluLint, PtrOrderHasNoAllowlistedPaths) {
  // Pointer-keyed ordering is nondeterministic wherever it appears.
  auto fs = lint_fixture_at("ptr_order.cpp", "obs/fixture.cpp");
  EXPECT_EQ(count_check(fs, "ptr-order"), 3);
}

// ---- raw-thread ----------------------------------------------------------

TEST(IluLint, RawThreadFires) {
  auto fs = lint_fixture_at("raw_thread.cpp", "core/fixture.cpp");
  EXPECT_GE(count_check(fs, "raw-thread"), 3)
      << "atomic, mutex, thread (and the lock_guard's mutex argument)";
}

TEST(IluLint, RawThreadSuppressed) {
  auto fs = lint_fixture_at("raw_thread_suppressed.cpp", "core/fixture.cpp");
  EXPECT_TRUE(fs.empty());
}

TEST(IluLint, RawThreadAllowlistedPaths) {
  for (const char* path :
       {"runtime/sharded_runtime.cpp", "exp/sweep.cpp", "obs/tracer.cpp",
        "util/log.cpp", "util/dcheck.hpp"}) {
    auto fs = lint_fixture_at("raw_thread.cpp", path);
    EXPECT_EQ(count_check(fs, "raw-thread"), 0) << "at " << path;
  }
}

// ---- std-function-hotpath ------------------------------------------------

TEST(IluLint, StdFunctionHotpathFires) {
  for (const char* path : {"runtime/fixture.hpp", "queueing/fixture.hpp",
                           "core/fixture.hpp"}) {
    auto fs = lint_fixture_at("std_function_hotpath.hpp", path);
    EXPECT_EQ(count_check(fs, "std-function-hotpath"), 2) << "at " << path;
  }
}

TEST(IluLint, StdFunctionHotpathSuppressed) {
  auto fs = lint_fixture_at("std_function_hotpath_suppressed.hpp",
                            "core/fixture.hpp");
  EXPECT_TRUE(fs.empty());
}

TEST(IluLint, StdFunctionHotpathScopedToHotHeaders) {
  // Non-hot-path headers and .cpp files may use std::function freely.
  for (const char* path : {"exp/fixture.hpp", "obs/fixture.hpp",
                           "util/fixture.hpp", "core/fixture.cpp"}) {
    auto fs = lint_fixture_at("std_function_hotpath.hpp", path);
    EXPECT_EQ(count_check(fs, "std-function-hotpath"), 0) << "at " << path;
  }
}

// ---- const-ref-capture ---------------------------------------------------

TEST(IluLint, ConstRefCaptureFires) {
  auto fs = lint_fixture_at("const_ref_capture.cpp", "core/fixture.cpp");
  EXPECT_EQ(count_check(fs, "const-ref-capture"), 5)
      << "one returned, two deferred, two stored; value captures, "
         "address-of init-captures, std::sort callbacks, and IIFEs stay "
         "clean";
  EXPECT_EQ(check_names(fs), std::set<std::string>{"const-ref-capture"});
}

TEST(IluLint, ConstRefCaptureSuppressed) {
  auto fs = lint_fixture_at("const_ref_capture_suppressed.cpp",
                            "core/fixture.cpp");
  EXPECT_TRUE(fs.empty());
}

TEST(IluLint, ConstRefCaptureExemptsSweepMachinery) {
  // exp/ fans ref-capturing jobs into worker threads and joins them before
  // the scope exits, by design.
  auto fs = lint_fixture_at("const_ref_capture.cpp", "exp/fixture.cpp");
  EXPECT_EQ(count_check(fs, "const-ref-capture"), 0);
}

// ---- registry-lookup-hotpath ---------------------------------------------

TEST(IluLint, RegistryLookupHotpathFires) {
  auto fs =
      lint_fixture_at("registry_lookup_hotpath.cpp", "core/fixture.cpp");
  EXPECT_EQ(count_check(fs, "registry-lookup-hotpath"), 4)
      << "counter/gauge/histogram/log_histogram literal lookups in lambdas; "
         "wiring-time lookup and dynamic-name lookup stay clean";
  EXPECT_EQ(check_names(fs),
            std::set<std::string>{"registry-lookup-hotpath"});
}

TEST(IluLint, RegistryLookupHotpathSuppressed) {
  auto fs = lint_fixture_at("registry_lookup_hotpath_suppressed.cpp",
                            "core/fixture.cpp");
  EXPECT_TRUE(fs.empty());
}

TEST(IluLint, RegistryLookupHotpathExemptsObsAndExp) {
  // The obs layer owns the registry; exp/ sweep jobs wire fresh panels per
  // run inside their job lambdas.
  for (const char* path : {"obs/fixture.cpp", "exp/fixture.cpp"}) {
    auto fs = lint_fixture_at("registry_lookup_hotpath.cpp", path);
    EXPECT_EQ(count_check(fs, "registry-lookup-hotpath"), 0) << "at " << path;
  }
}

TEST(IluLint, RegistryLookupHotpathIgnoresTopLevelLookups) {
  ilu::lint::FileInput in;
  in.rel_path = "core/fixture.cpp";
  in.content =
      "void wire(Registry& reg) {\n"
      "  auto* c = reg.counter(\"pool.hits\");\n"
      "  auto* h = reg.log_histogram(\"wait_ms\");\n"
      "}\n";
  auto fs = lint_file(in);
  EXPECT_TRUE(fs.empty()) << "wiring-time lookups outside lambdas are fine";
}

// ---- suppression grammar -------------------------------------------------

TEST(IluLint, MalformedSuppressionIsItselfAFinding) {
  auto fs = lint_fixture_at("bad_suppression.cpp", "core/fixture.cpp");
  // Two malformed allow() comments + the wall-clock finding the first one
  // failed to suppress (the second precedes a line whose finding it would
  // not have matched anyway).
  EXPECT_EQ(count_check(fs, "lint-suppression"), 2);
  EXPECT_GE(count_check(fs, "wall-clock"), 1)
      << "a malformed allow() must not suppress";
}

// ---- whole tree ----------------------------------------------------------

TEST(IluLint, RealTreeIsClean) {
  std::size_t files = 0;
  auto fs = lint_tree(std::string(ILU_SOURCE_DIR) + "/src", &files);
  EXPECT_GT(files, 50u) << "tree walk found suspiciously few files";
  for (const auto& f : fs) {
    ADD_FAILURE() << f.path << ":" << f.line << ": [" << f.check << "] "
                  << f.message;
  }
}

}  // namespace
