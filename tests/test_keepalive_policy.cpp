#include "keepalive/policy.hpp"

#include <gtest/gtest.h>

namespace ilu {
namespace {

CacheEntry entry(FunctionId fn, std::uint32_t mem, Duration init,
                 TimePoint last_used, std::uint64_t uses = 1) {
  CacheEntry e;
  e.fn = fn;
  e.mem_mb = mem;
  e.init_time = init;
  e.last_used = last_used;
  e.uses = uses;
  return e;
}

TEST(MakePolicy, AllNamesConstruct) {
  for (const char* n : {"TTL", "LRU", "FREQ", "GD", "LND", "HIST"}) {
    auto p = make_policy(n);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->name(), n);
  }
}

TEST(MakePolicy, UnknownThrows) {
  EXPECT_THROW(make_policy("BELADY"), std::invalid_argument);
}

TEST(TtlPolicy, ExpiresTenMinutesAfterLastUse) {
  TtlPolicy p;
  auto e = entry(0, 128, secs(1), secs(100));
  auto exp = p.expires_at(e);
  ASSERT_TRUE(exp.has_value());
  EXPECT_EQ(*exp, secs(100) + mins(10));
}

TEST(TtlPolicy, EvictionOrderIsLru) {
  TtlPolicy p;
  auto older = entry(0, 128, secs(1), secs(10));
  auto newer = entry(1, 128, secs(1), secs(20));
  EXPECT_LT(p.eviction_rank(older), p.eviction_rank(newer));
}

TEST(LruPolicy, NoExpiry) {
  LruPolicy p;
  EXPECT_FALSE(p.expires_at(entry(0, 128, secs(1), secs(0))).has_value());
}

TEST(LfuPolicy, RanksByFrequency) {
  LfuPolicy p;
  auto rare = entry(0, 128, secs(1), secs(100), /*uses=*/2);
  auto popular = entry(1, 128, secs(1), secs(10), /*uses=*/50);
  EXPECT_LT(p.eviction_rank(rare), p.eviction_rank(popular));
}

TEST(GreedyDual, PriorityIsFreqCostOverSizePlusL) {
  GreedyDualPolicy p;
  auto e = entry(0, 100, msecs(500), secs(1), /*uses=*/2);
  p.on_access(e, secs(1));
  // L=0, freq=2, cost=500 ms, size=100 MB -> 2*500/100 = 10.
  EXPECT_DOUBLE_EQ(e.priority, 10.0);
}

TEST(GreedyDual, AgingRaisesL) {
  GreedyDualPolicy p;
  auto e = entry(0, 100, msecs(500), secs(1), 1);
  p.on_access(e, secs(1));
  EXPECT_DOUBLE_EQ(e.priority, 5.0);
  p.on_evict(e);
  EXPECT_DOUBLE_EQ(p.aging_factor(), 5.0);
  auto e2 = entry(1, 100, msecs(500), secs(2), 1);
  p.on_access(e2, secs(2));
  EXPECT_DOUBLE_EQ(e2.priority, 10.0);  // L + 5
}

TEST(GreedyDual, LNeverDecreases) {
  GreedyDualPolicy p;
  auto big = entry(0, 10, secs(10), secs(1), 5);
  p.on_access(big, secs(1));
  p.on_evict(big);
  double l1 = p.aging_factor();
  auto small = entry(1, 1000, msecs(1), secs(2), 1);
  p.on_access(small, secs(2));
  // small's priority is l1 + epsilon, so evicting it nudges L up but can
  // never pull it down.
  p.on_evict(small);
  EXPECT_GE(p.aging_factor(), l1);
  EXPECT_DOUBLE_EQ(p.aging_factor(), small.priority);
}

TEST(GreedyDual, PrefersKeepingHighInitSmallMemory) {
  GreedyDualPolicy p;
  auto cheap = entry(0, 512, msecs(100), secs(1), 1);
  auto precious = entry(1, 64, secs(5), secs(1), 1);
  p.on_access(cheap, secs(1));
  p.on_access(precious, secs(1));
  EXPECT_LT(p.eviction_rank(cheap), p.eviction_rank(precious));
}

TEST(Landlord, CreditIgnoresFrequency) {
  LandlordPolicy p;
  auto once = entry(0, 100, msecs(500), secs(1), 1);
  auto often = entry(1, 100, msecs(500), secs(1), 100);
  p.on_access(once, secs(1));
  p.on_access(often, secs(1));
  EXPECT_DOUBLE_EQ(p.eviction_rank(once), p.eviction_rank(often));
}

class HistPolicyTest : public ::testing::Test {
 protected:
  HistPolicy p_;
};

TEST_F(HistPolicyTest, UnknownFunctionGetsGenericTtl) {
  auto e = entry(42, 128, secs(1), mins(5));
  auto exp = p_.expires_at(e);
  ASSERT_TRUE(exp.has_value());
  EXPECT_EQ(*exp, mins(5) + mins(120));
}

TEST_F(HistPolicyTest, RegularArrivalsBecomePredictable) {
  // Invocations every 5 minutes: CoV ~ 0 -> predictable.
  for (int i = 0; i <= 6; ++i) p_.on_invocation(7, mins(5.0 * i));
  EXPECT_TRUE(p_.predictable(7));
  EXPECT_LE(p_.cov(7), 2.0);
}

TEST_F(HistPolicyTest, PredictableFunctionKeepAliveTracksTail) {
  for (int i = 0; i <= 6; ++i) p_.on_invocation(7, mins(5.0 * i));
  auto e = entry(7, 128, secs(1), mins(30));
  auto exp = p_.expires_at(e);
  ASSERT_TRUE(exp.has_value());
  // Either eagerly evicted after the linger (prewarm scheduled) or kept
  // through the tail window; for a 5-min IAT with 1-min buckets the tail is
  // ~5-6 min, which exceeds 2x linger -> eager eviction after 1 min.
  EXPECT_EQ(*exp, mins(30) + mins(1));
}

TEST_F(HistPolicyTest, PrewarmPredictedBeforeNextArrival) {
  for (int i = 0; i <= 6; ++i) p_.on_invocation(7, mins(5.0 * i));
  // Last invocation at t=30 min; next predicted ~35 min. The prewarm must
  // land strictly BEFORE the predicted arrival (head bucket lower edge
  // minus the linger margin), or it loses the race to the invocation.
  auto at = p_.prewarm_at(7, mins(31));
  ASSERT_TRUE(at.has_value());
  EXPECT_GT(*at, mins(31));
  EXPECT_LT(*at, mins(35));
}

TEST_F(HistPolicyTest, PrewarmNeverScheduledInThePast) {
  for (int i = 0; i <= 6; ++i) p_.on_invocation(7, mins(5.0 * i));
  // Asking long after the predicted arrival: clamped to "now".
  auto at = p_.prewarm_at(7, mins(50));
  ASSERT_TRUE(at.has_value());
  EXPECT_EQ(*at, mins(50));
}

TEST_F(HistPolicyTest, UnpredictableGetsNoPrewarm) {
  // Heavy-tailed IATs (many 1 s gaps, one 50000 s gap): CoV > 3.
  TimePoint t{};
  p_.on_invocation(9, t);
  for (int i = 0; i < 9; ++i) {
    t += secs(1);
    p_.on_invocation(9, t);
  }
  t += secs(50000);
  p_.on_invocation(9, t);
  EXPECT_GT(p_.cov(9), 2.0);
  EXPECT_FALSE(p_.predictable(9));
  EXPECT_FALSE(p_.prewarm_at(9, t + secs(1)).has_value());
}

TEST_F(HistPolicyTest, EvictionRankPrefersEvictingFarthestNextUse) {
  // fn 1 arrives every minute, fn 2 every 60 minutes.
  for (int i = 0; i <= 10; ++i) p_.on_invocation(1, mins(i));
  for (int i = 0; i <= 10; ++i) p_.on_invocation(2, mins(60.0 * i));
  auto soon = entry(1, 128, secs(1), mins(600));
  auto far = entry(2, 128, secs(1), mins(600));
  EXPECT_LT(p_.eviction_rank(far), p_.eviction_rank(soon));
}

TEST_F(HistPolicyTest, FewSamplesStayUnpredictable) {
  p_.on_invocation(3, mins(0));
  p_.on_invocation(3, mins(5));
  EXPECT_FALSE(p_.predictable(3));  // only 1 IAT observed
}

}  // namespace
}  // namespace ilu
