// Death tests for TraceArena::pack's bounds checks. The packed key format
// silently truncates out-of-range inputs in release builds (documented and
// benign for the generators, which clamp first), so the only line of
// defense against a corrupting caller is the ILU_DCHECK pair in pack() —
// this binary builds with ILU_DEBUG_CHECKS=1 to prove those checks fire.
// Header-only on purpose: pack/key_at/key_fn are inline in
// trace/workload.hpp, so no library TU compiled without the flag mixes in.

#include <gtest/gtest.h>

#include "trace/workload.hpp"

namespace ilu {
namespace {

static_assert(ILU_DEBUG_CHECKS == 1,
              "this test must build with packed-key bounds checks enabled");

class PackGuardDeathTest : public ::testing::Test {
 protected:
  PackGuardDeathTest() {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

TEST_F(PackGuardDeathTest, InBoundsExtremesSurvive) {
  std::uint64_t k =
      TraceArena::pack(TimePoint{TraceArena::kMaxUs},
                       static_cast<FunctionId>(TraceArena::kMaxFn));
  EXPECT_EQ(TraceArena::key_at(k).count(), TraceArena::kMaxUs);
  EXPECT_EQ(TraceArena::key_fn(k), TraceArena::kMaxFn);
}

TEST_F(PackGuardDeathTest, NegativeTimeAborts) {
  EXPECT_DEATH(TraceArena::pack(TimePoint{-1}, 0),
               "event time out of packed-key range");
}

TEST_F(PackGuardDeathTest, TimePastMaxAborts) {
  EXPECT_DEATH(TraceArena::pack(TimePoint{TraceArena::kMaxUs + 1}, 0),
               "event time out of packed-key range");
}

TEST_F(PackGuardDeathTest, FunctionIdPastMaxAborts) {
  EXPECT_DEATH(TraceArena::pack(
                   TimePoint{0},
                   static_cast<FunctionId>(TraceArena::kMaxFn + 1)),
               "function id out of packed-key range");
}

}  // namespace
}  // namespace ilu
