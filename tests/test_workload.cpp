#include "trace/workload.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "trace/function_profile.hpp"
#include "trace/trace_io.hpp"

namespace ilu {
namespace {

Trace tiny_trace() {
  Trace t;
  t.functions = {lookbusy(msecs(100), 128), lookbusy(secs(1), 256)};
  t.duration = secs(10);
  t.events = {
      {secs(0), 0}, {secs(1), 1}, {secs(2), 0}, {secs(3), 0}, {secs(4), 1},
  };
  return t;
}

TEST(FunctionBench, MatchesTable3) {
  auto fb = function_bench();
  ASSERT_EQ(fb.size(), 7u);
  auto cnn = function_bench_app("ml_inference");
  EXPECT_EQ(cnn.mem_mb, 512u);
  EXPECT_EQ(cnn.init_time, secs(4.5));
  EXPECT_EQ(cnn.cold_time(), secs(6.5));  // Table 3 "run time"
  auto fp = function_bench_app("float_op");
  EXPECT_EQ(fp.mem_mb, 128u);
  EXPECT_EQ(fp.init_time, secs(1.7));
  EXPECT_EQ(fp.cold_time(), secs(2.0));
}

TEST(FunctionBench, UnknownAppThrows) {
  EXPECT_THROW(function_bench_app("nope"), std::out_of_range);
}

TEST(FunctionBench, AllWarmTimesPositive) {
  for (const auto& p : function_bench()) {
    EXPECT_GT(p.warm_time, Duration::zero()) << p.name;
    EXPECT_GT(p.init_time, Duration::zero()) << p.name;
  }
}

TEST(TraceStats, CountsAndRate) {
  auto t = tiny_trace();
  auto s = t.stats();
  EXPECT_EQ(s.num_functions, 2u);
  EXPECT_EQ(s.num_invocations, 5u);
  EXPECT_NEAR(s.reqs_per_sec, 0.5, 1e-9);  // 5 events over 10 s
  // IAT over the observed span: 4 s across 4 gaps = 1 s.
  EXPECT_EQ(s.avg_iat, secs(1));
}

TEST(TraceStats, LittlesLawConcurrency) {
  auto t = tiny_trace();
  auto s = t.stats();
  // fn0: 3 inv / 10 s * 0.1 s = 0.03; fn1: 2 / 10 * 1 = 0.2.
  EXPECT_NEAR(s.expected_concurrency, 0.23, 1e-9);
}

TEST(TraceStats, EmptyTrace) {
  Trace t;
  auto s = t.stats();
  EXPECT_EQ(s.num_invocations, 0u);
  EXPECT_DOUBLE_EQ(s.reqs_per_sec, 0.0);
}

TEST(TraceTimeseries, MinuteBuckets) {
  Trace t;
  t.functions = {lookbusy(msecs(10), 64)};
  t.duration = mins(3);
  t.events = {{secs(10), 0}, {secs(20), 0}, {secs(70), 0}};
  auto rps = t.invocations_per_second_by_minute();
  ASSERT_EQ(rps.size(), 3u);
  EXPECT_NEAR(rps[0], 2.0 / 60.0, 1e-9);
  EXPECT_NEAR(rps[1], 1.0 / 60.0, 1e-9);
  EXPECT_NEAR(rps[2], 0.0, 1e-9);
}

TEST(TraceValid, DetectsUnsortedEvents) {
  auto t = tiny_trace();
  EXPECT_TRUE(t.valid());
  std::swap(t.events[0], t.events[4]);
  EXPECT_FALSE(t.valid());
}

TEST(TraceValid, DetectsBadFunctionId) {
  auto t = tiny_trace();
  t.events.push_back({secs(9), 7});
  EXPECT_FALSE(t.valid());
}

TEST(TraceIo, RoundTrip) {
  auto t = tiny_trace();
  auto prefix = (std::filesystem::temp_directory_path() / "ilu_trace_test")
                    .string();
  save_trace(t, prefix);
  auto loaded = load_trace(prefix);
  EXPECT_EQ(loaded.duration, t.duration);
  ASSERT_EQ(loaded.functions.size(), t.functions.size());
  EXPECT_EQ(loaded.functions[1].mem_mb, 256u);
  EXPECT_EQ(loaded.functions[0].warm_time, msecs(100));
  ASSERT_EQ(loaded.events.size(), t.events.size());
  EXPECT_EQ(loaded.events[3].at, secs(3));
  EXPECT_EQ(loaded.events[1].fn, 1u);
  std::remove((prefix + "_functions.csv").c_str());
  std::remove((prefix + "_events.csv").c_str());
}

TEST(TraceIo, LoadMissingThrows) {
  EXPECT_THROW(load_trace("/nonexistent/prefix"), std::runtime_error);
}

}  // namespace
}  // namespace ilu
