#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace ilu {
namespace {

TEST(Welford, MatchesTwoPassComputation) {
  Rng rng(1);
  std::vector<double> xs;
  Welford w;
  for (int i = 0; i < 1000; ++i) {
    double x = rng.uniform(0.0, 100.0);
    xs.push_back(x);
    w.add(x);
  }
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(w.mean(), mean, 1e-9);
  EXPECT_NEAR(w.variance(), var, 1e-6);
}

TEST(Welford, EmptyAndSingle) {
  Welford w;
  EXPECT_EQ(w.count(), 0u);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  w.add(5.0);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  EXPECT_DOUBLE_EQ(w.cov(), 0.0);
}

TEST(Welford, CovOfConstantIsZero) {
  Welford w;
  for (int i = 0; i < 10; ++i) w.add(7.0);
  EXPECT_DOUBLE_EQ(w.cov(), 0.0);
}

TEST(Welford, ResetClearsState) {
  Welford w;
  w.add(1.0);
  w.add(2.0);
  w.reset();
  EXPECT_EQ(w.count(), 0u);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
}

TEST(MovingWindow, EvictsOldest) {
  MovingWindow mw(3);
  mw.add(1.0);
  mw.add(2.0);
  mw.add(3.0);
  EXPECT_DOUBLE_EQ(mw.mean(), 2.0);
  mw.add(10.0);  // evicts 1.0
  EXPECT_DOUBLE_EQ(mw.mean(), 5.0);
  EXPECT_EQ(mw.size(), 3u);
}

TEST(MovingWindow, MinMaxLast) {
  MovingWindow mw(4);
  mw.add(5.0);
  mw.add(1.0);
  mw.add(9.0);
  EXPECT_DOUBLE_EQ(mw.min(), 1.0);
  EXPECT_DOUBLE_EQ(mw.max(), 9.0);
  EXPECT_DOUBLE_EQ(mw.last(), 9.0);
}

TEST(MovingWindow, EmptyIsZero) {
  MovingWindow mw(2);
  EXPECT_TRUE(mw.empty());
  EXPECT_DOUBLE_EQ(mw.mean(), 0.0);
}

TEST(ExpDecayAverage, ConvergesToConstantInput) {
  ExpDecayAverage avg(60.0);
  for (int i = 0; i < 1000; ++i) avg.sample(4.0, 5.0);
  EXPECT_NEAR(avg.value(), 4.0, 1e-6);
}

TEST(ExpDecayAverage, DecaysTowardZero) {
  ExpDecayAverage avg(60.0);
  avg.reset(8.0);
  avg.sample(0.0, 60.0);
  EXPECT_NEAR(avg.value(), 8.0 * std::exp(-1.0), 1e-9);
}

TEST(SlidingRateMeter, CountsWithinWindowOnly) {
  SlidingRateMeter m(secs(10));
  m.record(secs(0));
  m.record(secs(5));
  m.record(secs(9));
  EXPECT_EQ(m.count_in_window(secs(9)), 3u);
  EXPECT_EQ(m.count_in_window(secs(11)), 2u);  // t=0 expired
  EXPECT_EQ(m.count_in_window(secs(25)), 0u);
}

TEST(SlidingRateMeter, RatePerSecond) {
  SlidingRateMeter m(secs(10));
  // 20 events over 9.5 s; a full window has not elapsed yet, so the rate is
  // computed over the observed span.
  for (int i = 0; i < 20; ++i) m.record(secs(i * 0.5));
  EXPECT_NEAR(m.rate_per_sec(secs(9.5)), 20.0 / 9.5, 0.01);
  // Once past a full window, the nominal window is the denominator: events
  // before t=2 s have expired, leaving 16 of the originals plus the new one.
  m.record(secs(12));
  EXPECT_NEAR(m.rate_per_sec(secs(12)), 17.0 / 10.0, 0.01);
}

TEST(SlidingRateMeter, EarlyRateNotUnderestimated) {
  SlidingRateMeter m(mins(30));
  // 1 event/s for the first 60 s of a 30-minute window.
  for (int i = 0; i < 60; ++i) m.record(secs(i));
  EXPECT_NEAR(m.rate_per_sec(secs(59)), 1.0, 0.05);
}

TEST(Summary, PercentilesOfKnownSample) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_NEAR(s.p50(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(s.percentile(100.0), 100.0, 1e-9);
  EXPECT_NEAR(s.p99(), 99.01, 1e-9);
  EXPECT_NEAR(s.mean(), 50.5, 1e-9);
}

TEST(Summary, SingleValue) {
  Summary s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.p50(), 7.0);
  EXPECT_DOUBLE_EQ(s.p99(), 7.0);
}

TEST(Summary, AddAfterPercentileStillSorted) {
  Summary s;
  s.add(3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 3.0);
  s.add(0.5);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 0.5);
}

TEST(Summary, AddDurationMs) {
  Summary s;
  s.add_ms(msecs(2.5));
  EXPECT_NEAR(s.mean(), 2.5, 1e-9);
}

TEST(BucketHistogram, QuantileUpperBound) {
  BucketHistogram h(1.0, 10);
  // 5 samples in bucket 0, 5 in bucket 4.
  for (int i = 0; i < 5; ++i) h.add(0.5);
  for (int i = 0; i < 5; ++i) h.add(4.5);
  EXPECT_DOUBLE_EQ(h.quantile_upper_bound(0.5), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile_upper_bound(0.9), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile_upper_bound(1.0), 5.0);
}

TEST(BucketHistogram, QuantileLowerBoundIsOneBucketBelowUpper) {
  BucketHistogram h(60.0, 241);
  for (int i = 0; i < 10; ++i) h.add(720.0);  // all in bucket [720, 780)
  EXPECT_DOUBLE_EQ(h.quantile_upper_bound(0.05), 780.0);
  EXPECT_DOUBLE_EQ(h.quantile_lower_bound(0.05), 720.0);
}

TEST(BucketHistogram, QuantileLowerBoundFlooredAtZero) {
  BucketHistogram h(1.0, 4);
  h.add(0.5);
  EXPECT_DOUBLE_EQ(h.quantile_lower_bound(0.5), 0.0);
}

TEST(BucketHistogram, OverflowClampsToLastBucket) {
  BucketHistogram h(1.0, 4);
  h.add(100.0);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_DOUBLE_EQ(h.overflow_fraction(), 1.0);
}

TEST(BucketHistogram, NegativeClampsToFirstBucket) {
  BucketHistogram h(1.0, 4);
  h.add(-5.0);
  EXPECT_EQ(h.bucket_count(0), 1u);
}

TEST(BucketHistogram, EmptyQuantileIsZero) {
  BucketHistogram h(1.0, 4);
  EXPECT_DOUBLE_EQ(h.quantile_upper_bound(0.99), 0.0);
  EXPECT_DOUBLE_EQ(h.overflow_fraction(), 0.0);
}

TEST(BucketHistogram, ResetClears) {
  BucketHistogram h(1.0, 4);
  h.add(1.5);
  h.reset();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.bucket_count(1), 0u);
}

}  // namespace
}  // namespace ilu
