#include "trace/azure.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace ilu {
namespace {

AzureModelConfig small_config() {
  AzureModelConfig cfg;
  cfg.population = 2000;
  cfg.days = 0.25;  // 6 hours keeps tests quick
  cfg.seed = 99;
  return cfg;
}

class AzureModelTest : public ::testing::Test {
 protected:
  AzureTraceModel model_{small_config()};
};

TEST_F(AzureModelTest, PopulationHasConfiguredSize) {
  EXPECT_EQ(model_.population().size(), 2000u);
}

TEST_F(AzureModelTest, PopulationIsDeterministic) {
  AzureTraceModel again{small_config()};
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(model_.population()[i].mean_iat_s,
                     again.population()[i].mean_iat_s);
  }
}

TEST_F(AzureModelTest, HeavyTailedPopularity) {
  // Top 1% of functions should carry a large majority of expected
  // invocations (the Azure trace's headline skew).
  std::vector<double> inv;
  for (const auto& m : model_.population()) inv.push_back(m.expected_invocations);
  std::sort(inv.begin(), inv.end());
  double total = std::accumulate(inv.begin(), inv.end(), 0.0);
  double top1 = std::accumulate(inv.end() - 20, inv.end(), 0.0);
  EXPECT_GT(top1 / total, 0.5);
}

TEST_F(AzureModelTest, MajorityOfFunctionsAreRarelyInvoked) {
  // Over half of functions should have IAT > 30 min (always-cold under TTL).
  std::size_t rare = 0;
  for (const auto& m : model_.population()) {
    if (m.mean_iat_s > 1800.0) ++rare;
  }
  EXPECT_GT(rare, model_.population().size() / 2);
}

TEST_F(AzureModelTest, MemoryWithinBounds) {
  const auto& cfg = model_.config();
  for (const auto& m : model_.population()) {
    EXPECT_GE(m.mem_mb, cfg.min_fn_mem_mb);
    EXPECT_LE(m.mem_mb, cfg.max_fn_mem_mb);
  }
}

TEST_F(AzureModelTest, DurationsWithinBounds) {
  const auto& cfg = model_.config();
  for (const auto& m : model_.population()) {
    EXPECT_GE(m.warm_s, cfg.min_dur_s);
    EXPECT_LE(m.warm_s, cfg.max_dur_s);
    EXPECT_GE(m.init_s, cfg.min_init_s);
    EXPECT_LE(m.init_s, cfg.max_init_s);
  }
}

TEST_F(AzureModelTest, RareSamplerPicksLeastPopular) {
  auto rare = model_.sample_rare(50);
  EXPECT_EQ(rare.functions.size(), 50u);
  // Every rare function's per-trace rate should be below the population
  // median rate.
  std::vector<double> all_iat;
  for (const auto& m : model_.population()) all_iat.push_back(m.mean_iat_s);
  std::nth_element(all_iat.begin(), all_iat.begin() + all_iat.size() / 2,
                   all_iat.end());
  double median_iat = all_iat[all_iat.size() / 2];
  auto stats = rare.stats();
  // Rare sample should have lower request rate than a random one.
  auto rnd = model_.sample_random(50);
  EXPECT_LT(stats.reqs_per_sec, rnd.stats().reqs_per_sec);
  (void)median_iat;
}

TEST_F(AzureModelTest, RepresentativeSamplerSpansQuartiles) {
  auto rep = model_.sample_representative(40);
  EXPECT_EQ(rep.functions.size(), 40u);
  // Should contain both very frequent and very infrequent functions: count
  // per-function event totals.
  std::vector<std::size_t> counts(rep.functions.size(), 0);
  for (const auto& e : rep.events) ++counts[e.fn];
  auto [mn, mx] = std::minmax_element(counts.begin(), counts.end());
  EXPECT_LT(*mn * 10, *mx + 10);  // large spread
}

TEST_F(AzureModelTest, TracesAreValidAndSorted) {
  for (auto t : {model_.sample_rare(30), model_.sample_representative(30),
                 model_.sample_random(30)}) {
    EXPECT_TRUE(t.valid());
    EXPECT_EQ(t.duration, secs(0.25 * 86400));
  }
}

TEST_F(AzureModelTest, TargetRpsScalingLandsNearTarget) {
  auto t = model_.sample_representative(60, /*target_rps=*/20.0);
  auto s = t.stats();
  EXPECT_GT(s.reqs_per_sec, 10.0);
  EXPECT_LT(s.reqs_per_sec, 40.0);
}

TEST_F(AzureModelTest, MinuteBucketReplayRule) {
  // Events within one minute must be equally spaced: check spacing
  // divisibility for a busy function.
  auto t = model_.sample_random(20, /*target_rps=*/10.0);
  ASSERT_FALSE(t.events.empty());
  // All events of the same (fn, minute) bucket are equally spaced; verify
  // for the first busy minute we find with >= 3 events of one function.
  for (std::size_t i = 0; i + 2 < t.events.size(); ++i) {
    const auto& a = t.events[i];
    std::vector<TimePoint> same;
    auto minute = a.at.count() / 60'000'000;
    for (std::size_t j = i; j < t.events.size(); ++j) {
      const auto& b = t.events[j];
      if (b.at.count() / 60'000'000 != minute) break;
      if (b.fn == a.fn) same.push_back(b.at);
    }
    if (same.size() >= 3) {
      auto gap1 = same[1] - same[0];
      auto gap2 = same[2] - same[1];
      EXPECT_NEAR(static_cast<double>(gap1.count()),
                  static_cast<double>(gap2.count()), 2.0);
      return;
    }
  }
  GTEST_SKIP() << "no busy minute found in sample";
}

TEST_F(AzureModelTest, DiurnalMeanIsOne) {
  double sum = 0.0;
  for (int m = 0; m < 1440; ++m) sum += model_.diurnal(m);
  EXPECT_NEAR(sum / 1440.0, 1.0, 1e-6);
}

TEST_F(AzureModelTest, DiurnalPeaksMidday) {
  EXPECT_GT(model_.diurnal(720), model_.diurnal(60));
}

TEST_F(AzureModelTest, FullTraceTimeseriesHasDiurnalShape) {
  auto rps = model_.full_trace_rps_by_minute();
  ASSERT_EQ(rps.size(), 360u);  // 0.25 days
  double total = std::accumulate(rps.begin(), rps.end(), 0.0);
  EXPECT_GT(total, 0.0);
}

TEST(AzureModelFullDay, DiurnalVisibleInFullTrace) {
  AzureModelConfig cfg;
  cfg.population = 3000;
  cfg.days = 1.0;
  AzureTraceModel model(cfg);
  auto rps = model.full_trace_rps_by_minute();
  ASSERT_EQ(rps.size(), 1440u);
  // Average around midday should exceed the nightly trough.
  double noon = 0.0, night = 0.0;
  for (int m = 660; m < 780; ++m) noon += rps[m];
  for (int m = 0; m < 120; ++m) night += rps[m];
  EXPECT_GT(noon, night);
}

TEST(AzureModelEdge, SampleMoreThanPopulationClamps) {
  AzureModelConfig cfg;
  cfg.population = 10;
  cfg.days = 0.05;
  AzureTraceModel model(cfg);
  auto t = model.sample_random(100);
  EXPECT_EQ(t.functions.size(), 10u);
}

TEST_F(AzureModelTest, ArenaSamplersMatchTraceSamplers) {
  // The SoA arena path must be event-for-event identical to the AoS path:
  // the sharded bench relies on replaying an arena in place of a trace.
  struct Pair {
    Trace trace;
    TraceArena arena;
  };
  const double rps = 15.0;
  for (const auto& [t, a] :
       {Pair{model_.sample_rare(30, rps), model_.sample_rare_arena(30, rps)},
        Pair{model_.sample_representative(30, rps),
             model_.sample_representative_arena(30, rps)},
        Pair{model_.sample_random(30, rps),
             model_.sample_random_arena(30, rps)}}) {
    ASSERT_EQ(a.size(), t.events.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a.at(i), t.events[i].at) << "event " << i;
      ASSERT_EQ(a.fn[i], t.events[i].fn) << "event " << i;
    }
    ASSERT_EQ(a.functions.size(), t.functions.size());
    for (std::size_t i = 0; i < a.functions.size(); ++i) {
      EXPECT_EQ(a.functions[i].name, t.functions[i].name);
    }
    EXPECT_EQ(a.duration, t.duration);
  }
}

}  // namespace
}  // namespace ilu
