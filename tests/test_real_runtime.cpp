#include "runtime/real_runtime.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace ilu {
namespace {

TEST(RealRuntime, ExecutesPostedTask) {
  RealRuntime rt;
  std::atomic<bool> ran{false};
  rt.post([&] { ran = true; });
  rt.drain();
  EXPECT_TRUE(ran);
}

TEST(RealRuntime, RespectsDelayRoughly) {
  RealRuntime rt;
  std::atomic<std::int64_t> fired_at{-1};
  TimePoint start = rt.now();
  rt.schedule(msecs(50), [&] { fired_at = (rt.now() - start).count(); });
  rt.drain();
  ASSERT_GE(fired_at.load(), msecs(45).count());
  // Generous upper bound: loaded CI machines can be slow.
  EXPECT_LT(fired_at.load(), secs(5).count());
}

TEST(RealRuntime, TasksSerializeInTimeOrder) {
  RealRuntime rt;
  std::vector<int> order;
  rt.schedule(msecs(60), [&] { order.push_back(3); });
  rt.schedule(msecs(20), [&] { order.push_back(1); });
  rt.schedule(msecs(40), [&] { order.push_back(2); });
  rt.drain();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(RealRuntime, CancelPreventsExecution) {
  RealRuntime rt;
  std::atomic<bool> fired{false};
  auto id = rt.schedule(msecs(100), [&] { fired = true; });
  EXPECT_TRUE(rt.cancel(id));
  rt.drain();
  EXPECT_FALSE(fired);
}

TEST(RealRuntime, ScheduleFromMultipleThreads) {
  RealRuntime rt;
  std::atomic<int> count{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        rt.post([&] { count.fetch_add(1); });
      }
    });
  }
  for (auto& th : threads) th.join();
  rt.drain();
  EXPECT_EQ(count.load(), 400);
}

TEST(RealRuntime, ScheduleFromWithinCallback) {
  RealRuntime rt;
  std::atomic<int> depth{0};
  std::function<void()> chain = [&] {
    if (depth.fetch_add(1) + 1 < 10) rt.post(chain);
  };
  rt.post(chain);
  rt.drain();
  EXPECT_EQ(depth.load(), 10);
}

TEST(RealRuntime, ShutdownDropsPendingTimers) {
  RealRuntime rt;
  std::atomic<bool> fired{false};
  rt.schedule(secs(30), [&] { fired = true; });
  rt.shutdown();
  EXPECT_FALSE(fired);
}

TEST(RealRuntime, ScheduleAfterShutdownReturnsInvalid) {
  RealRuntime rt;
  rt.shutdown();
  EXPECT_EQ(rt.schedule(msecs(1), [] {}), Runtime::kInvalidTimer);
}

TEST(RealRuntime, NowIsMonotonic) {
  RealRuntime rt;
  TimePoint a = rt.now();
  TimePoint b = rt.now();
  EXPECT_LE(a, b);
}

TEST(RealRuntime, DrainOnEmptyReturnsImmediately) {
  RealRuntime rt;
  rt.drain();  // must not hang
  SUCCEED();
}

// Regression (pre-wheel bug): cancel() of a timer that already fired
// returned true and left a tombstone in the cancelled_ set forever. The
// generation-checked wheel must say false, exactly.
TEST(RealRuntime, CancelAfterFireReturnsFalse) {
  RealRuntime rt;
  std::atomic<bool> fired{false};
  const auto id = rt.schedule(msecs(1), [&] { fired = true; });
  rt.drain();
  ASSERT_TRUE(fired);
  EXPECT_FALSE(rt.cancel(id));
  EXPECT_FALSE(rt.cancel(id));  // idempotent
}

// Regression (pre-wheel bug): tombstones for fired timers accumulated
// without bound. pending() is exact now — heavy fire + cancel churn must
// end at zero, and ids from long ago must stay dead.
TEST(RealRuntime, CancelChurnLeavesNothingPending) {
  RealRuntime rt;
  std::atomic<int> count{0};
  std::vector<Runtime::TimerId> old_ids;
  for (int round = 0; round < 20; ++round) {
    std::vector<Runtime::TimerId> ids;
    for (int i = 0; i < 100; ++i)
      ids.push_back(rt.schedule(usecs(200 * i), [&] { count.fetch_add(1); }));
    for (std::size_t i = 0; i < ids.size(); i += 2) rt.cancel(ids[i]);
    rt.drain();
    old_ids.push_back(ids.front());
  }
  EXPECT_EQ(rt.pending(), 0u);
  for (const auto id : old_ids) EXPECT_FALSE(rt.cancel(id));
  EXPECT_GT(count.load(), 0);
}

TEST(RealRuntime, PendingTracksScheduleAndCancel) {
  RealRuntime rt;
  const auto a = rt.schedule(secs(30), [] {});
  const auto b = rt.schedule(secs(30), [] {});
  const auto c = rt.schedule(secs(30), [] {});
  EXPECT_EQ(rt.pending(), 3u);
  EXPECT_TRUE(rt.cancel(b));
  EXPECT_EQ(rt.pending(), 2u);
  EXPECT_TRUE(rt.cancel(a));
  EXPECT_TRUE(rt.cancel(c));
  rt.drain();  // all cancelled: returns without waiting 30 s
  EXPECT_EQ(rt.pending(), 0u);
}

// Multi-producer schedule/cancel storm across the sharded submission
// queues; every timer must either fire or be cancelled-true, exactly once.
// Meaningful under TSan (tools/check_all.sh runs this suite there).
TEST(RealRuntime, MultiProducerScheduleCancelStorm) {
  RealRuntime rt;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  std::atomic<std::uint64_t> fired{0};
  std::atomic<std::uint64_t> cancelled{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::vector<Runtime::TimerId> mine;
      mine.reserve(kPerProducer);
      for (int i = 0; i < kPerProducer; ++i) {
        mine.push_back(rt.schedule(usecs((i % 7) * 300),
                                   [&] { fired.fetch_add(1); }));
        if ((i + p) % 2 == 0) {
          if (rt.cancel(mine[static_cast<std::size_t>(i) / 2]))
            cancelled.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  rt.drain();
  EXPECT_EQ(fired.load() + cancelled.load(),
            static_cast<std::uint64_t>(kProducers) * kPerProducer);
  EXPECT_EQ(rt.pending(), 0u);
}

// drain() racing shutdown() from another thread must never hang: the
// stopping flag releases waiters even with undrained timers pending.
TEST(RealRuntime, DrainVersusShutdownRace) {
  for (int iter = 0; iter < 10; ++iter) {
    RealRuntime rt;
    rt.schedule(secs(30), [] {});
    std::thread drainer([&] { rt.drain(); });
    std::thread spammer([&] {
      for (int i = 0; i < 100; ++i) rt.schedule(secs(10), [] {});
    });
    rt.shutdown();
    drainer.join();
    spammer.join();
  }
  SUCCEED();
}

// Producers hammering schedule() while shutdown runs: late schedules must
// return kInvalidTimer or be dropped cleanly (tasks destroyed, no leak —
// ASan-visible in the check_all matrix), never crash.
TEST(RealRuntime, ShutdownWhileProducersSchedule) {
  std::atomic<int> invalid{0};
  {
    RealRuntime rt;
    std::atomic<bool> go{false};
    std::vector<std::thread> producers;
    for (int p = 0; p < 3; ++p) {
      producers.emplace_back([&] {
        while (!go.load()) {
        }
        for (int i = 0; i < 500; ++i) {
          if (rt.schedule(msecs(100), [] {}) == Runtime::kInvalidTimer)
            invalid.fetch_add(1);
        }
      });
    }
    go = true;
    rt.shutdown();
    for (auto& t : producers) t.join();
  }
  SUCCEED();
}

}  // namespace
}  // namespace ilu
