#include "runtime/real_runtime.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace ilu {
namespace {

TEST(RealRuntime, ExecutesPostedTask) {
  RealRuntime rt;
  std::atomic<bool> ran{false};
  rt.post([&] { ran = true; });
  rt.drain();
  EXPECT_TRUE(ran);
}

TEST(RealRuntime, RespectsDelayRoughly) {
  RealRuntime rt;
  std::atomic<std::int64_t> fired_at{-1};
  TimePoint start = rt.now();
  rt.schedule(msecs(50), [&] { fired_at = (rt.now() - start).count(); });
  rt.drain();
  ASSERT_GE(fired_at.load(), msecs(45).count());
  // Generous upper bound: loaded CI machines can be slow.
  EXPECT_LT(fired_at.load(), secs(5).count());
}

TEST(RealRuntime, TasksSerializeInTimeOrder) {
  RealRuntime rt;
  std::vector<int> order;
  rt.schedule(msecs(60), [&] { order.push_back(3); });
  rt.schedule(msecs(20), [&] { order.push_back(1); });
  rt.schedule(msecs(40), [&] { order.push_back(2); });
  rt.drain();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(RealRuntime, CancelPreventsExecution) {
  RealRuntime rt;
  std::atomic<bool> fired{false};
  auto id = rt.schedule(msecs(100), [&] { fired = true; });
  EXPECT_TRUE(rt.cancel(id));
  rt.drain();
  EXPECT_FALSE(fired);
}

TEST(RealRuntime, ScheduleFromMultipleThreads) {
  RealRuntime rt;
  std::atomic<int> count{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        rt.post([&] { count.fetch_add(1); });
      }
    });
  }
  for (auto& th : threads) th.join();
  rt.drain();
  EXPECT_EQ(count.load(), 400);
}

TEST(RealRuntime, ScheduleFromWithinCallback) {
  RealRuntime rt;
  std::atomic<int> depth{0};
  std::function<void()> chain = [&] {
    if (depth.fetch_add(1) + 1 < 10) rt.post(chain);
  };
  rt.post(chain);
  rt.drain();
  EXPECT_EQ(depth.load(), 10);
}

TEST(RealRuntime, ShutdownDropsPendingTimers) {
  RealRuntime rt;
  std::atomic<bool> fired{false};
  rt.schedule(secs(30), [&] { fired = true; });
  rt.shutdown();
  EXPECT_FALSE(fired);
}

TEST(RealRuntime, ScheduleAfterShutdownReturnsInvalid) {
  RealRuntime rt;
  rt.shutdown();
  EXPECT_EQ(rt.schedule(msecs(1), [] {}), Runtime::kInvalidTimer);
}

TEST(RealRuntime, NowIsMonotonic) {
  RealRuntime rt;
  TimePoint a = rt.now();
  TimePoint b = rt.now();
  EXPECT_LE(a, b);
}

TEST(RealRuntime, DrainOnEmptyReturnsImmediately) {
  RealRuntime rt;
  rt.drain();  // must not hang
  SUCCEED();
}

}  // namespace
}  // namespace ilu
