#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

namespace ilu {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("ilu_csv_test_" + std::to_string(::getpid()) + ".csv"))
                .string();
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(CsvTest, RoundTrip) {
  {
    CsvWriter w(path_);
    w.row("name", "value", "count");
    w.row("foo", 1.5, 3);
    w.flush();
  }
  CsvReader r(path_);
  std::vector<std::string> f;
  ASSERT_TRUE(r.next(f));
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "name");
  ASSERT_TRUE(r.next(f));
  EXPECT_EQ(f[0], "foo");
  EXPECT_NEAR(std::stod(f[1]), 1.5, 1e-9);
  EXPECT_EQ(f[2], "3");
  EXPECT_FALSE(r.next(f));
}

TEST_F(CsvTest, CommaInFieldThrows) {
  CsvWriter w(path_);
  EXPECT_THROW(w.row("a,b"), std::runtime_error);
}

TEST_F(CsvTest, OpenMissingFileThrows) {
  EXPECT_THROW(CsvReader("/nonexistent/dir/file.csv"), std::runtime_error);
}

TEST(SplitCsvLine, HandlesEmptyFields) {
  auto f = split_csv_line("a,,c");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[1], "");
}

TEST(SplitCsvLine, SingleField) {
  auto f = split_csv_line("solo");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0], "solo");
}

TEST(SplitCsvLine, TrailingComma) {
  auto f = split_csv_line("a,b,");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[2], "");
}

}  // namespace
}  // namespace ilu
