#include "keepalive/cache.hpp"

#include <gtest/gtest.h>

#include "trace/function_profile.hpp"

namespace ilu {
namespace {

std::vector<FunctionProfile> two_functions() {
  return {
      lookbusy(secs(1), /*mem=*/100, /*init=*/secs(2)),   // fn 0
      lookbusy(secs(2), /*mem=*/300, /*init=*/secs(5)),   // fn 1
  };
}

TEST(KeepAliveCache, FirstInvocationIsCold) {
  LruPolicy policy;
  KeepAliveCache cache(policy, {.capacity_mb = 1000}, two_functions());
  auto out = cache.on_invocation(0, secs(0));
  EXPECT_FALSE(out.warm);
  EXPECT_FALSE(out.dropped);
  EXPECT_EQ(out.exec, secs(3));  // warm 1 + init 2
  EXPECT_EQ(cache.used_mb(), 100u);
  EXPECT_EQ(cache.busy_count(), 1u);
}

TEST(KeepAliveCache, SecondInvocationAfterReleaseIsWarm) {
  LruPolicy policy;
  KeepAliveCache cache(policy, {.capacity_mb = 1000}, two_functions());
  cache.on_invocation(0, secs(0));       // cold, busy until t=3
  auto out = cache.on_invocation(0, secs(10));
  EXPECT_TRUE(out.warm);
  EXPECT_EQ(out.exec, secs(1));
  EXPECT_EQ(cache.stats().warm_starts, 1u);
  EXPECT_EQ(cache.stats().cold_starts, 1u);
}

TEST(KeepAliveCache, ConcurrentInvocationsOfSameFunctionAreColdSpawnStart) {
  LruPolicy policy;
  KeepAliveCache cache(policy, {.capacity_mb = 1000}, two_functions());
  cache.on_invocation(0, secs(0));
  // Arrives while the only container is still busy (release at t=3).
  auto out = cache.on_invocation(0, secs(1));
  EXPECT_FALSE(out.warm);
  EXPECT_EQ(cache.used_mb(), 200u);  // two containers
}

TEST(KeepAliveCache, BusyContainersPinMemoryAndCauseDrops) {
  LruPolicy policy;
  KeepAliveCache cache(policy, {.capacity_mb = 350}, two_functions());
  cache.on_invocation(1, secs(0));  // 300 MB busy until t=7
  auto out = cache.on_invocation(1, secs(1));
  EXPECT_TRUE(out.dropped);  // no idle to evict, 300+300 > 350
  EXPECT_EQ(cache.stats().dropped, 1u);
}

TEST(KeepAliveCache, EvictsIdleToMakeRoom) {
  LruPolicy policy;
  KeepAliveCache cache(policy, {.capacity_mb = 350}, two_functions());
  cache.on_invocation(0, secs(0));           // fn0 cold, idle at t=3
  auto out = cache.on_invocation(1, secs(5));  // needs 300, 100+300 > 350
  EXPECT_FALSE(out.dropped);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.used_mb(), 300u);
}

TEST(KeepAliveCache, LruEvictsLeastRecentlyUsed) {
  LruPolicy policy;
  auto fns = std::vector<FunctionProfile>{
      lookbusy(msecs(100), 100, secs(1)),
      lookbusy(msecs(100), 100, secs(1)),
      lookbusy(msecs(100), 100, secs(1)),
  };
  KeepAliveCache cache(policy, {.capacity_mb = 200}, fns);
  cache.on_invocation(0, secs(0));
  cache.on_invocation(1, secs(2));  // evicts nothing (100+100 = 200)
  // fn2 arrives: must evict fn0 (least recently used).
  cache.on_invocation(2, secs(4));
  // fn1 must still be warm, fn0 cold.
  EXPECT_TRUE(cache.on_invocation(1, secs(6)).warm);
  EXPECT_FALSE(cache.on_invocation(0, secs(8)).warm);
}

TEST(KeepAliveCache, TtlExpiresIdleContainers) {
  TtlPolicy policy(mins(10));
  KeepAliveCache cache(policy, {.capacity_mb = 1000}, two_functions());
  cache.on_invocation(0, secs(0));
  // After 10 minutes + sweep slack the container must be gone.
  auto out = cache.on_invocation(0, mins(15));
  EXPECT_FALSE(out.warm);
  EXPECT_GE(cache.stats().expirations, 1u);
}

TEST(KeepAliveCache, TtlKeepsWithinWindow) {
  TtlPolicy policy(mins(10));
  KeepAliveCache cache(policy, {.capacity_mb = 1000}, two_functions());
  cache.on_invocation(0, secs(0));
  auto out = cache.on_invocation(0, mins(9));
  EXPECT_TRUE(out.warm);
}

TEST(KeepAliveCache, WorkConservingLruKeepsBeyondTtlWindow) {
  LruPolicy policy;
  KeepAliveCache cache(policy, {.capacity_mb = 1000}, two_functions());
  cache.on_invocation(0, secs(0));
  auto out = cache.on_invocation(0, mins(60));
  EXPECT_TRUE(out.warm) << "LRU is work-conserving: no TTL expiry";
}

TEST(KeepAliveCache, StatsAccounting) {
  LruPolicy policy;
  KeepAliveCache cache(policy, {.capacity_mb = 1000}, two_functions());
  cache.on_invocation(0, secs(0));    // cold: base 1 s, init 2 s
  cache.on_invocation(0, secs(10));   // warm: base 1 s
  cache.on_invocation(0, secs(20));   // warm
  const auto& s = cache.stats();
  EXPECT_EQ(s.invocations, 3u);
  EXPECT_EQ(s.total_base_exec, secs(3));
  EXPECT_EQ(s.total_init_paid, secs(2));
  EXPECT_NEAR(s.cold_fraction(), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(s.exec_increase_pct(), 100.0 * 2.0 / 3.0, 1e-6);
}

TEST(KeepAliveCache, PerFunctionCounts) {
  LruPolicy policy;
  KeepAliveCache cache(policy, {.capacity_mb = 1000}, two_functions());
  cache.on_invocation(0, secs(0));
  cache.on_invocation(1, secs(1));
  cache.on_invocation(0, secs(10));
  EXPECT_EQ(cache.cold_by_fn()[0], 1u);
  EXPECT_EQ(cache.cold_by_fn()[1], 1u);
  EXPECT_EQ(cache.warm_by_fn()[0], 1u);
  EXPECT_EQ(cache.warm_by_fn()[1], 0u);
}

TEST(KeepAliveCache, ShrinkCapacityEvictsIdle) {
  LruPolicy policy;
  KeepAliveCache cache(policy, {.capacity_mb = 1000}, two_functions());
  cache.on_invocation(0, secs(0));
  cache.on_invocation(1, secs(1));
  cache.advance_to(secs(30));  // both idle; used = 400
  EXPECT_EQ(cache.used_mb(), 400u);
  cache.set_capacity_mb(150);
  EXPECT_LE(cache.used_mb(), 150u);
  EXPECT_EQ(cache.capacity_mb(), 150u);
}

TEST(KeepAliveCache, GrowCapacityAllowsMoreContainers) {
  LruPolicy policy;
  KeepAliveCache cache(policy, {.capacity_mb = 100}, two_functions());
  EXPECT_TRUE(cache.on_invocation(1, secs(0)).dropped);  // 300 > 100
  cache.set_capacity_mb(500);
  EXPECT_FALSE(cache.on_invocation(1, secs(1)).dropped);
}

TEST(KeepAliveCache, GreedyDualKeepsExpensiveInitFunctions) {
  GreedyDualPolicy policy;
  // fn0: cheap init, fn1: expensive init; same memory.
  std::vector<FunctionProfile> fns = {
      lookbusy(msecs(100), 100, msecs(100)),
      lookbusy(msecs(100), 100, secs(10)),
  };
  KeepAliveCache cache(policy, {.capacity_mb = 200}, fns);
  cache.on_invocation(0, secs(0));
  cache.on_invocation(1, secs(20));
  cache.advance_to(secs(60));
  // Third function (reuse fn0's profile shape) forces one eviction:
  // extend function table? Instead re-invoke fn0 and fn1 to bump, then add
  // memory pressure by shrinking.
  cache.set_capacity_mb(100);
  // GD must have evicted fn0 (low cost/size), keeping fn1 warm.
  EXPECT_TRUE(cache.on_invocation(1, secs(70)).warm);
}

TEST(KeepAliveCache, HistPrewarmBringsContainerBack) {
  HistPolicy policy;
  std::vector<FunctionProfile> fns = {lookbusy(secs(1), 100, secs(5))};
  KeepAliveCache cache(policy, {.capacity_mb = 1000}, fns);
  // Regular 10-minute cadence: policy becomes predictable, eagerly evicts
  // after ~1 min linger and prewarms before the next predicted arrival.
  for (int i = 0; i < 8; ++i) {
    auto out = cache.on_invocation(0, mins(10.0 * i));
    if (i >= 5) {
      EXPECT_TRUE(out.warm) << "iteration " << i
                            << " should hit a prewarmed container";
    }
  }
  EXPECT_GT(cache.stats().prewarm_creates, 0u);
}

TEST(KeepAliveCache, AdvanceToIsMonotonic) {
  LruPolicy policy;
  KeepAliveCache cache(policy, {.capacity_mb = 1000}, two_functions());
  cache.advance_to(secs(5));
  cache.advance_to(secs(5));  // same time ok
  cache.advance_to(secs(6));
  SUCCEED();
}

TEST(KeepAliveCache, ManyInvocationsStress) {
  GreedyDualPolicy policy;
  std::vector<FunctionProfile> fns;
  for (int i = 0; i < 20; ++i) {
    fns.push_back(lookbusy(msecs(50 + i * 10), 50 + i * 13, msecs(200 + i * 37)));
  }
  KeepAliveCache cache(policy, {.capacity_mb = 600}, fns);
  for (int k = 0; k < 20000; ++k) {
    cache.on_invocation(static_cast<FunctionId>((k * 7) % 20),
                        msecs(k * 25.0));
  }
  const auto& s = cache.stats();
  EXPECT_EQ(s.invocations, 20000u);
  EXPECT_EQ(s.warm_starts + s.cold_starts + s.dropped, 20000u);
  EXPECT_LE(cache.used_mb(), 600u);
}

}  // namespace
}  // namespace ilu
