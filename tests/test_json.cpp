#include "util/json.hpp"

#include <gtest/gtest.h>

namespace ilu {
namespace {

TEST(Json, ParsePrimitives) {
  EXPECT_TRUE(json_parse("null").is_null());
  EXPECT_TRUE(json_parse("true").as_bool());
  EXPECT_FALSE(json_parse("false").as_bool());
  EXPECT_DOUBLE_EQ(json_parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(json_parse("-3.5").as_number(), -3.5);
  EXPECT_DOUBLE_EQ(json_parse("1e3").as_number(), 1000.0);
  EXPECT_EQ(json_parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParseWhitespaceTolerant) {
  auto v = json_parse("  {\n\t\"a\" : 1 ,\r\n \"b\": [ 2 , 3 ] }  ");
  EXPECT_DOUBLE_EQ(v.number_or("a", 0), 1.0);
  EXPECT_EQ(v.find("b")->as_array().size(), 2u);
}

TEST(Json, ParseNestedStructures) {
  auto v = json_parse(R"({"outer":{"inner":[{"x":1},{"x":2}]}})");
  const auto& arr = v.find("outer")->find("inner")->as_array();
  ASSERT_EQ(arr.size(), 2u);
  EXPECT_DOUBLE_EQ(arr[1].number_or("x", 0), 2.0);
}

TEST(Json, StringEscapes) {
  auto v = json_parse(R"("a\"b\\c\nd\teA")");
  EXPECT_EQ(v.as_string(), "a\"b\\c\nd\teA");
}

TEST(Json, UnicodeEscapesUtf8) {
  // U+00E9 (é) -> two UTF-8 bytes; U+20AC (€) -> three.
  EXPECT_EQ(json_parse(R"("\u00e9")").as_string(), "\xc3\xa9");
  EXPECT_EQ(json_parse(R"("\u20ac")").as_string(), "\xe2\x82\xac");
}

TEST(Json, EmptyContainers) {
  EXPECT_TRUE(json_parse("{}").as_object().empty());
  EXPECT_TRUE(json_parse("[]").as_array().empty());
}

TEST(Json, RejectsMalformed) {
  EXPECT_THROW(json_parse(""), JsonError);
  EXPECT_THROW(json_parse("{"), JsonError);
  EXPECT_THROW(json_parse("[1,]"), JsonError);
  EXPECT_THROW(json_parse("{\"a\":}"), JsonError);
  EXPECT_THROW(json_parse("\"unterminated"), JsonError);
  EXPECT_THROW(json_parse("tru"), JsonError);
  EXPECT_THROW(json_parse("01x"), JsonError);
  EXPECT_THROW(json_parse("nan"), JsonError);
}

TEST(Json, RejectsTrailingGarbage) {
  EXPECT_THROW(json_parse("{} extra"), JsonError);
  EXPECT_THROW(json_parse("1 2"), JsonError);
}

TEST(Json, RejectsSurrogateEscapes) {
  // U+1D11E needs a \u surrogate pair; the escaped form is rejected,
  // but raw UTF-8 for the same character passes through untouched.
  EXPECT_THROW(json_parse(R"("\ud834\udd1e")"), JsonError);
  EXPECT_EQ(json_parse("\"\xF0\x9D\x84\x9E\"").as_string(),
            "\xF0\x9D\x84\x9E");
}

TEST(Json, TypeMismatchThrows) {
  auto v = json_parse("{\"a\": 1}");
  EXPECT_THROW(v.as_array(), JsonError);
  EXPECT_THROW(v.find("a")->as_string(), JsonError);
}

TEST(Json, FindOnNonObjectReturnsNull) {
  EXPECT_EQ(json_parse("[1]").find("a"), nullptr);
  EXPECT_EQ(json_parse("{\"a\":1}").find("b"), nullptr);
}

TEST(Json, DefaultsHelpers) {
  auto v = json_parse(R"({"n": 5, "s": "x", "b": true})");
  EXPECT_DOUBLE_EQ(v.number_or("n", 1), 5.0);
  EXPECT_DOUBLE_EQ(v.number_or("missing", 1), 1.0);
  EXPECT_DOUBLE_EQ(v.number_or("s", 1), 1.0);  // wrong type -> default
  EXPECT_EQ(v.string_or("s", "d"), "x");
  EXPECT_EQ(v.string_or("n", "d"), "d");
  EXPECT_TRUE(v.bool_or("b", false));
  EXPECT_TRUE(v.bool_or("missing", true));
}

TEST(Json, DumpCompact) {
  auto v = json_parse(R"({"b":[1,2],"a":"x"})");
  // std::map orders keys.
  EXPECT_EQ(v.dump(), R"({"a":"x","b":[1,2]})");
}

TEST(Json, DumpPretty) {
  auto v = json_parse(R"({"a":1})");
  EXPECT_EQ(v.dump(2), "{\n  \"a\": 1\n}");
}

TEST(Json, DumpEscapesStrings) {
  JsonValue v(std::string("line\nbreak\"quote"));
  EXPECT_EQ(v.dump(), R"("line\nbreak\"quote")");
}

TEST(Json, DumpNumbersIntegralWithoutFraction) {
  EXPECT_EQ(JsonValue(42.0).dump(), "42");
  EXPECT_EQ(JsonValue(2.5).dump(), "2.5");
  EXPECT_EQ(JsonValue(-7).dump(), "-7");
}

TEST(Json, RoundTrip) {
  const char* doc =
      R"({"arr":[1,2.5,"three",null,true],"nested":{"k":"v"},"num":-1e-3})";
  auto v = json_parse(doc);
  auto again = json_parse(v.dump());
  EXPECT_EQ(v, again);
}

TEST(Json, RoundTripPretty) {
  auto v = json_parse(R"({"a":[{"b":1}],"c":false})");
  EXPECT_EQ(json_parse(v.dump(4)), v);
}

TEST(Json, BuildProgrammatically) {
  JsonObject o;
  o["name"] = "worker0";
  o["cores"] = 48;
  o["tags"] = JsonArray{JsonValue("a"), JsonValue("b")};
  JsonValue v(std::move(o));
  EXPECT_EQ(v.dump(), R"({"cores":48,"name":"worker0","tags":["a","b"]})");
}

TEST(Json, ParseFileMissingThrows) {
  EXPECT_THROW(json_parse_file("/nonexistent/cfg.json"), std::runtime_error);
}

TEST(Json, DeepNesting) {
  std::string doc;
  for (int i = 0; i < 100; ++i) doc += "[";
  doc += "1";
  for (int i = 0; i < 100; ++i) doc += "]";
  auto v = json_parse(doc);
  const JsonValue* p = &v;
  for (int i = 0; i < 100; ++i) p = &p->as_array().at(0);
  EXPECT_DOUBLE_EQ(p->as_number(), 1.0);
}

}  // namespace
}  // namespace ilu
