#include <gtest/gtest.h>

#include "queueing/invocation_queue.hpp"
#include "queueing/queue_policy.hpp"
#include "queueing/regulator.hpp"

namespace ilu {
namespace {

QueueItem item(FunctionId fn, TimePoint arrival) {
  QueueItem i;
  i.fn = fn;
  i.arrival = arrival;
  return i;
}

class QueueingTest : public ::testing::Test {
 protected:
  void seed_chars() {
    // fn0: short warm (50 ms); fn1: long warm (5 s); fn2: unseen.
    chars_.on_arrival(0, secs(0));
    chars_.record_warm(0, msecs(50));
    chars_.record_cold(0, msecs(500));
    chars_.on_arrival(1, secs(0));
    chars_.record_warm(1, secs(5));
    chars_.record_cold(1, secs(8));
    // IATs: fn0 frequent, fn1 rare.
    chars_.on_arrival(0, secs(1));
    chars_.on_arrival(0, secs(2));
    chars_.on_arrival(1, secs(600));
  }
  CharacteristicsMap chars_;
};

TEST_F(QueueingTest, MakeQueuePolicyNames) {
  for (const char* n : {"FCFS", "SJF", "EEDF", "RARE"}) {
    EXPECT_EQ(make_queue_policy(n)->name(), n);
  }
  EXPECT_THROW(make_queue_policy("LIFO"), std::invalid_argument);
}

TEST_F(QueueingTest, FcfsOrdersByArrival) {
  FcfsQueuePolicy p;
  EXPECT_LT(p.priority(item(1, secs(1)), chars_, true),
            p.priority(item(0, secs(2)), chars_, true));
}

TEST_F(QueueingTest, SjfPrefersShortFunctions) {
  seed_chars();
  SjfQueuePolicy p;
  EXPECT_LT(p.priority(item(0, secs(0)), chars_, true),
            p.priority(item(1, secs(0)), chars_, true));
}

TEST_F(QueueingTest, SjfUsesColdTimeWithoutWarmContainer) {
  seed_chars();
  SjfQueuePolicy p;
  double warm_est = p.priority(item(0, secs(0)), chars_, true);
  double cold_est = p.priority(item(0, secs(0)), chars_, false);
  EXPECT_NEAR(warm_est, 50.0, 1e-6);
  EXPECT_NEAR(cold_est, 500.0, 1e-6);
}

TEST_F(QueueingTest, UnseenFunctionHasZeroPriorityInSjf) {
  seed_chars();
  SjfQueuePolicy p;
  EXPECT_DOUBLE_EQ(p.priority(item(2, secs(100)), chars_, true), 0.0);
}

TEST_F(QueueingTest, EedfBalancesArrivalAndSize) {
  seed_chars();
  EedfQueuePolicy p;
  // Long job that arrived much earlier beats a short job that just came.
  double early_long = p.priority(item(1, secs(0)), chars_, true);   // 0+5000
  double late_short = p.priority(item(0, secs(10)), chars_, true);  // 10000+50
  EXPECT_LT(early_long, late_short);
}

TEST_F(QueueingTest, RarePrioritizesHighIat) {
  seed_chars();
  RareQueuePolicy p;
  EXPECT_LT(p.priority(item(1, secs(0)), chars_, true),
            p.priority(item(0, secs(0)), chars_, true));
}

TEST_F(QueueingTest, InvocationQueuePopsLowestPriority) {
  seed_chars();
  SjfQueuePolicy policy;
  InvocationQueue q(policy, chars_);
  q.push(item(1, secs(0)), true);  // 5000 ms
  q.push(item(0, secs(0)), true);  // 50 ms
  auto first = q.pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->fn, 0u);
  EXPECT_EQ(q.pop()->fn, 1u);
  EXPECT_FALSE(q.pop().has_value());
}

TEST_F(QueueingTest, FifoTieBreakPreservesArrivalOrder) {
  FcfsQueuePolicy policy;
  InvocationQueue q(policy, chars_);
  // All same arrival time -> same priority; FIFO by sequence.
  for (FunctionId f = 0; f < 5; ++f) q.push(item(f, secs(1)), true);
  for (FunctionId f = 0; f < 5; ++f) {
    EXPECT_EQ(q.pop()->fn, f);
  }
}

TEST_F(QueueingTest, QueueSizeTracking) {
  FcfsQueuePolicy policy;
  InvocationQueue q(policy, chars_);
  EXPECT_TRUE(q.empty());
  q.push(item(0, secs(0)), true);
  q.push(item(1, secs(1)), true);
  EXPECT_EQ(q.size(), 2u);
  q.pop();
  EXPECT_EQ(q.size(), 1u);
}

TEST_F(QueueingTest, HeadPriorityVisible) {
  seed_chars();
  SjfQueuePolicy policy;
  InvocationQueue q(policy, chars_);
  EXPECT_FALSE(q.head_priority().has_value());
  q.push(item(1, secs(0)), true);
  EXPECT_NEAR(*q.head_priority(), 5000.0, 1e-6);
}

TEST(Regulator, FixedLimitEnforced) {
  ConcurrencyRegulator reg(RegulatorConfig{.limit = 4.0});
  EXPECT_TRUE(reg.can_dispatch(3));
  EXPECT_FALSE(reg.can_dispatch(4));
  reg.tick(10.0);  // fixed mode: tick is a no-op
  EXPECT_DOUBLE_EQ(reg.limit(), 4.0);
}

TEST(Regulator, AimdAdditiveIncreaseWhileUncongested) {
  RegulatorConfig cfg{.limit = 10.0, .dynamic = true};
  ConcurrencyRegulator reg(cfg);
  for (int i = 0; i < 5; ++i) reg.tick(0.5);
  EXPECT_DOUBLE_EQ(reg.limit(), 15.0);
}

TEST(Regulator, AimdMultiplicativeDecreaseOnCongestion) {
  RegulatorConfig cfg{.limit = 100.0, .dynamic = true};
  ConcurrencyRegulator reg(cfg);
  reg.tick(1.5);
  EXPECT_DOUBLE_EQ(reg.limit(), 70.0);
}

TEST(Regulator, AimdRespectsBounds) {
  RegulatorConfig cfg{.limit = 4.0,
                      .dynamic = true,
                      .min_limit = 2.0,
                      .max_limit = 6.0};
  ConcurrencyRegulator reg(cfg);
  for (int i = 0; i < 50; ++i) reg.tick(0.0);
  EXPECT_DOUBLE_EQ(reg.limit(), 6.0);
  for (int i = 0; i < 50; ++i) reg.tick(5.0);
  EXPECT_DOUBLE_EQ(reg.limit(), 2.0);
}

TEST(Regulator, AimdSawtoothConvergesAroundCongestionPoint) {
  // Feed load proportional to the limit: load = limit/50. Congestion at
  // 1.0 -> equilibrium limit ~50.
  RegulatorConfig cfg{.limit = 10.0,
                      .dynamic = true,
                      .max_limit = 500.0};
  ConcurrencyRegulator reg(cfg);
  for (int i = 0; i < 500; ++i) reg.tick(reg.limit() / 50.0);
  EXPECT_GT(reg.limit(), 30.0);
  EXPECT_LT(reg.limit(), 75.0);
}

}  // namespace
}  // namespace ilu
