#include "trace/azure_csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "keepalive/simulator.hpp"

namespace ilu {
namespace {

/// Writes a miniature dataset in the real AzureFunctionsDataset2019 schema.
class AzureCsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "ilu_azure_csv";
    std::filesystem::create_directories(dir_);
    inv_ = (dir_ / "invocations.csv").string();
    dur_ = (dir_ / "durations.csv").string();
    mem_ = (dir_ / "memory.csv").string();

    {
      std::ofstream f(inv_);
      f << "HashOwner,HashApp,HashFunction,Trigger";
      for (int m = 1; m <= 5; ++m) f << "," << m;
      f << "\n";
      // fnA (appX): 3 invocations in minute 1, 1 in minute 3.
      f << "o1,appX,fnA,http,3,0,1,0,0\n";
      // fnB (appX): invoked once only -> dropped (paper rule).
      f << "o1,appX,fnB,timer,1,0,0,0,0\n";
      // fnC (appY): 2 invocations in minute 5.
      f << "o2,appY,fnC,queue,0,0,0,0,2\n";
    }
    {
      std::ofstream f(dur_);
      f << "HashOwner,HashApp,HashFunction,Average,Count,Minimum,Maximum\n";
      f << "o1,appX,fnA,1000,4,800,3500\n";
      // fnC intentionally missing -> defaults used.
    }
    {
      std::ofstream f(mem_);
      f << "HashOwner,HashApp,SampleCount,AverageAllocatedMb\n";
      f << "o1,appX,100,400\n";
      f << "o2,appY,100,96\n";
    }
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  std::string inv_, dur_, mem_;
};

TEST_F(AzureCsvTest, LoadsFunctionsAndDropsSingletons) {
  auto t = load_azure_dataset(inv_, dur_, mem_);
  ASSERT_EQ(t.functions.size(), 2u);  // fnB dropped
  EXPECT_EQ(t.functions[0].name, "fnA");
  EXPECT_EQ(t.functions[1].name, "fnC");
  EXPECT_TRUE(t.valid());
}

TEST_F(AzureCsvTest, DurationsMapped) {
  auto t = load_azure_dataset(inv_, dur_, mem_);
  // fnA: warm = Average (1000 ms); init = Maximum - Average (2500 ms).
  EXPECT_EQ(t.functions[0].warm_time, msecs(1000));
  EXPECT_EQ(t.functions[0].init_time, msecs(2500));
  // fnC: defaults.
  AzureCsvOptions opts;
  EXPECT_EQ(t.functions[1].warm_time, opts.default_warm);
  EXPECT_EQ(t.functions[1].init_time, opts.min_init);
}

TEST_F(AzureCsvTest, AppMemorySplitEvenly) {
  auto t = load_azure_dataset(inv_, dur_, mem_);
  // appX has two functions in the invocations file (fnA, fnB) -> 400/2.
  EXPECT_EQ(t.functions[0].mem_mb, 200u);
  // appY has one -> 96.
  EXPECT_EQ(t.functions[1].mem_mb, 96u);
}

TEST_F(AzureCsvTest, MinuteBucketReplayRule) {
  auto t = load_azure_dataset(inv_, dur_, mem_);
  // fnA minute 1 (bucket index 0): 3 invocations equally spaced 20 s apart.
  ASSERT_GE(t.events.size(), 4u);
  EXPECT_EQ(t.events[0].at, secs(0));
  EXPECT_EQ(t.events[1].at, secs(20));
  EXPECT_EQ(t.events[2].at, secs(40));
  // fnA minute 3 single invocation -> start of minute (120 s).
  EXPECT_EQ(t.events[3].at, secs(120));
  // fnC minute 5: two at 240 and 270.
  EXPECT_EQ(t.events[4].at, secs(240));
  EXPECT_EQ(t.events[5].at, secs(270));
  EXPECT_EQ(t.events[4].fn, 1u);
}

TEST_F(AzureCsvTest, DurationCoversAllMinutes) {
  auto t = load_azure_dataset(inv_, dur_, mem_);
  EXPECT_EQ(t.duration, mins(5));
}

TEST_F(AzureCsvTest, MaxFunctionsLimits) {
  AzureCsvOptions opts;
  opts.max_functions = 1;
  auto t = load_azure_dataset(inv_, dur_, mem_, opts);
  EXPECT_EQ(t.functions.size(), 1u);
}

TEST_F(AzureCsvTest, MissingFileThrows) {
  EXPECT_THROW(load_azure_dataset("/no/such.csv", dur_, mem_),
               std::runtime_error);
}

TEST_F(AzureCsvTest, MalformedHeaderThrows) {
  auto bad = (dir_ / "bad.csv").string();
  {
    std::ofstream f(bad);
    f << "NotTheRightColumns\nx\n";
  }
  EXPECT_THROW(load_azure_dataset(bad, dur_, mem_), std::runtime_error);
}

TEST_F(AzureCsvTest, LoadedTraceRunsThroughKeepAliveSim) {
  auto t = load_azure_dataset(inv_, dur_, mem_);
  auto r = run_keepalive_sim(t, "GD", 1024);
  EXPECT_EQ(r.stats.invocations, t.events.size());
  EXPECT_GT(r.stats.cold_starts, 0u);
}

}  // namespace
}  // namespace ilu
