// Tests for the Azure-model features added for fidelity: per-function
// activity windows (temporal locality), the per-function concurrency
// sanity cap, and the rare-sampler "always cold under TTL" property.

#include <gtest/gtest.h>

#include <algorithm>

#include "trace/azure.hpp"

namespace ilu {
namespace {

AzureModelConfig cfg_with(std::uint64_t seed) {
  AzureModelConfig cfg;
  cfg.population = 3000;
  cfg.days = 1.0;
  cfg.seed = seed;
  return cfg;
}

TEST(AzureActivity, WindowModulationHasUnitMean) {
  AzureTraceModel model(cfg_with(3));
  // For every function, integrating activity() over the day must give ~1
  // (the window boost is normalized against the inactive floor).
  for (std::size_t i = 0; i < 50; ++i) {
    const auto& m = model.population()[i];
    double sum = 0.0;
    for (int minute = 0; minute < 1440; ++minute) {
      sum += model.activity(m, minute);
    }
    EXPECT_NEAR(sum / 1440.0, 1.0, 0.02) << "function " << i;
  }
}

TEST(AzureActivity, InsideWindowBoostedOutsideSuppressed) {
  AzureTraceModel model(cfg_with(4));
  const auto& m = model.population()[0];
  double inside = model.activity(m, m.active_start_min + 0.5);
  double outside =
      model.activity(m, m.active_start_min + m.active_len_min + 1.0);
  if (m.active_len_min < 1439.0) {
    EXPECT_GT(inside, 1.0);
    EXPECT_NEAR(outside, model.config().inactive_weight, 1e-9);
  }
}

TEST(AzureActivity, WindowWrapsAroundMidnight) {
  AzureTraceModel model(cfg_with(5));
  AzureFunctionMeta m = model.population()[0];
  m.active_start_min = 1400.0;  // 23:20
  m.active_len_min = 120.0;     // through 01:20
  m.active_boost = 3.0;
  EXPECT_DOUBLE_EQ(model.activity(m, 1430.0), 3.0);  // 23:50 inside
  EXPECT_DOUBLE_EQ(model.activity(m, 30.0), 3.0);    // 00:30 inside (wrap)
  EXPECT_DOUBLE_EQ(model.activity(m, 300.0),
                   model.config().inactive_weight);  // 05:00 outside
}

TEST(AzureActivity, DisabledWindowsGiveFlatActivity) {
  AzureModelConfig cfg = cfg_with(6);
  cfg.active_window_median_min = 0.0;  // disable
  AzureTraceModel model(cfg);
  const auto& m = model.population()[0];
  for (int minute = 0; minute < 1440; minute += 97) {
    EXPECT_DOUBLE_EQ(model.activity(m, minute), 1.0);
  }
}

TEST(AzureActivity, TrafficConcentratesInWindows) {
  // Generated events for a rarely-invoked function should mostly fall in
  // its active window.
  AzureTraceModel model(cfg_with(7));
  // Pick a function with a few dozen daily invocations and a short window.
  std::size_t chosen = SIZE_MAX;
  for (std::size_t i = 0; i < model.population().size(); ++i) {
    const auto& m = model.population()[i];
    if (m.expected_invocations > 30 && m.expected_invocations < 200 &&
        m.active_len_min < 400) {
      chosen = i;
      break;
    }
  }
  ASSERT_NE(chosen, SIZE_MAX);
  auto trace = model.build_trace({chosen});
  const auto& m = model.population()[chosen];
  ASSERT_GT(trace.events.size(), 10u);
  std::size_t inside = 0;
  for (const auto& e : trace.events) {
    double minute = to_sec(e.at) / 60.0;
    double off = minute - m.active_start_min;
    if (off < 0) off += 1440.0;
    if (off < m.active_len_min) ++inside;
  }
  EXPECT_GT(static_cast<double>(inside) / trace.events.size(), 0.5);
}

TEST(AzureConcurrencyCap, BoundsPerFunctionExpectedConcurrency) {
  AzureTraceModel model(cfg_with(8));
  double cap = model.config().max_expected_concurrency;
  for (const auto& m : model.population()) {
    EXPECT_LE(m.warm_s / m.mean_iat_s, cap + 1e-9);
  }
}

TEST(AzureConcurrencyCap, DisablingAllowsHotLongFunctions) {
  AzureModelConfig cfg = cfg_with(9);
  cfg.max_expected_concurrency = 0.0;  // off
  AzureTraceModel model(cfg);
  double worst = 0.0;
  for (const auto& m : model.population()) {
    worst = std::max(worst, m.warm_s / m.mean_iat_s);
  }
  // With a heavy-tailed population something exceeds the default cap.
  EXPECT_GT(worst, 30.0);
}

TEST(AzureRareSampler, PicksAlwaysColdUnderTtlFunctions) {
  AzureTraceModel model(cfg_with(10));
  auto trace = model.sample_rare(100);
  // Identify sampled population entries by matching the generated name.
  for (const auto& f : trace.functions) {
    auto idx = std::stoul(f.name.substr(std::string("azure_fn_").size()));
    const auto& m = model.population()[idx];
    EXPECT_GT(m.mean_iat_s, 600.0) << f.name;          // > 10-min TTL
    EXPECT_GE(m.expected_invocations, 2.0) << f.name;  // re-used
  }
}

TEST(AzureRareSampler, IsARandomSampleNotTheAbsoluteRarest) {
  AzureTraceModel model(cfg_with(11));
  auto trace = model.sample_rare(100);
  // If it were the absolute bottom-100, total invocations would be ~200;
  // a random rare sample has a spread of rates.
  auto stats = trace.stats();
  EXPECT_GT(stats.num_invocations, 300u);
}

}  // namespace
}  // namespace ilu
