// Tests for the parallel experiment sweep engine (exp/sweep.hpp): the
// determinism contract (byte-identical results at any thread count),
// work distribution, per-task log isolation with submission-order flush,
// and the --threads flag parsing.
//
// This test is also the TSan target for the engine: build with
// -DILU_SANITIZE=thread and run test_exp_sweep to race-check the
// work-stealing deques and the thread-local log capture.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/keepalive_sweep.hpp"
#include "exp/sweep.hpp"
#include "keepalive/simulator.hpp"
#include "runtime/sim_runtime.hpp"
#include "trace/function_profile.hpp"
#include "trace/loadgen.hpp"
#include "trace/workload.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace ilu {
namespace {

/// A self-contained deterministic simulation: seeded random event churn on
/// a private SimRuntime, folded into a row string. Any cross-task
/// interference or result misordering changes the bytes.
struct SimRow {
  std::string row;
  std::uint64_t events = 0;
};

SimRow run_seeded_sim(std::uint32_t seed) {
  SimRuntime rt;
  Rng rng(seed);
  std::uint64_t hash = 0xcbf29ce484222325ull;
  std::vector<Runtime::TimerId> ids;
  for (int i = 0; i < 500; ++i) {
    auto delay = usecs(static_cast<std::int64_t>(rng.uniform_index(100000)));
    ids.push_back(rt.schedule(delay, [&hash, i] {
      hash = (hash ^ static_cast<std::uint64_t>(i)) * 0x100000001b3ull;
    }));
  }
  // Cancel a seed-dependent subset.
  for (std::size_t i = 0; i < ids.size(); i += 1 + seed % 5) {
    rt.cancel(ids[i]);
  }
  rt.run();
  char buf[128];
  std::snprintf(buf, sizeof buf, "seed=%u hash=%016llx events=%llu now=%lld",
                seed, static_cast<unsigned long long>(hash),
                static_cast<unsigned long long>(rt.events_processed()),
                static_cast<long long>(rt.now().count()));
  return SimRow{buf, rt.events_processed()};
}

std::vector<std::function<SimRow()>> seeded_tasks(int n) {
  std::vector<std::function<SimRow()>> tasks;
  for (int i = 0; i < n; ++i) {
    tasks.emplace_back([i] { return run_seeded_sim(static_cast<std::uint32_t>(i)); });
  }
  return tasks;
}

TEST(SweepRunner, ByteIdenticalResultsAcrossThreadCounts) {
  auto tasks = seeded_tasks(24);
  auto seq = exp::SweepRunner({.threads = 1}).run(tasks);
  for (unsigned threads : {2u, 4u, 0u}) {  // 0 = hardware concurrency
    auto par = exp::SweepRunner({.threads = threads}).run(tasks);
    ASSERT_EQ(par.size(), seq.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
      EXPECT_EQ(par[i].row, seq[i].row) << "threads=" << threads << " i=" << i;
      EXPECT_EQ(par[i].events, seq[i].events);
    }
  }
}

TEST(SweepRunner, MatchesPlainSequentialLoop) {
  auto tasks = seeded_tasks(8);
  std::vector<SimRow> plain;
  for (auto& t : tasks) plain.push_back(t());
  auto swept = exp::SweepRunner({.threads = 4}).run(tasks);
  ASSERT_EQ(swept.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(swept[i].row, plain[i].row);
  }
}

TEST(SweepRunner, KeepAliveSweepDeterministicAcrossThreads) {
  // The real fig4/fig5 cell: KeepAliveCache replay over a shared read-only
  // trace, swept over cache sizes.
  std::vector<SyntheticFunctionSpec> specs = {
      {.profile = lookbusy(msecs(100), 512, secs(1)), .mean_iat = msecs(50),
       .exponential = true},
      {.profile = lookbusy(msecs(400), 1024, secs(2)), .mean_iat = msecs(200),
       .exponential = true},
  };
  auto trace = make_synthetic_trace(specs, mins(5), 11);
  const std::vector<std::uint64_t> sizes = {512, 1024, 2048, 4096};

  auto seq = sweep_cache_sizes(trace, "GD", sizes, 1);
  auto par = sweep_cache_sizes(trace, "GD", sizes, 4);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].capacity_mb, par[i].capacity_mb);
    EXPECT_EQ(seq[i].stats.warm_starts, par[i].stats.warm_starts);
    EXPECT_EQ(seq[i].stats.cold_starts, par[i].stats.cold_starts);
    EXPECT_EQ(seq[i].stats.evictions, par[i].stats.evictions);
    EXPECT_EQ(seq[i].stats.total_init_paid, par[i].stats.total_init_paid);
  }
}

TEST(SweepRunner, AllTasksRunExactlyOnce) {
  constexpr int kN = 100;
  std::vector<std::atomic<int>> counts(kN);
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < kN; ++i) {
    tasks.emplace_back([&counts, i] {
      counts[i].fetch_add(1);
      return i;
    });
  }
  auto results = exp::SweepRunner({.threads = 4}).run(tasks);
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(counts[i].load(), 1);
    EXPECT_EQ(results[i], i);
  }
}

TEST(SweepRunner, LogsFlushInSubmissionOrderWithoutInterleaving) {
  LogLevel prev_level = log_level();
  set_log_level(LogLevel::Info);
  std::ostringstream captured;
  set_log_sink(&captured);

  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 12; ++i) {
    tasks.emplace_back([i] {
      log_info("task ", i, " line a");
      log_info("task ", i, " line b");
      return i;
    });
  }
  exp::SweepRunner({.threads = 4}).run(tasks);

  set_log_sink(nullptr);
  set_log_level(prev_level);

  std::string expected;
  for (int i = 0; i < 12; ++i) {
    expected += "[INFO] task " + std::to_string(i) + " line a\n";
    expected += "[INFO] task " + std::to_string(i) + " line b\n";
  }
  EXPECT_EQ(captured.str(), expected);
}

TEST(SweepRunner, PropagatesFirstTaskException) {
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.emplace_back([i]() -> int {
      if (i == 5) throw std::runtime_error("cell failed");
      return i;
    });
  }
  exp::SweepRunner runner({.threads = 4});
  EXPECT_THROW({ runner.run(tasks); }, std::runtime_error);
}

TEST(SweepRunner, RestoresLogSinkWhenTaskThrows) {
  LogLevel prev_level = log_level();
  set_log_level(LogLevel::Info);
  std::ostringstream captured;
  set_log_sink(&captured);

  std::vector<std::function<int()>> tasks;
  tasks.emplace_back([]() -> int {
    log_info("before throw");
    throw std::runtime_error("cell failed");
  });
  // threads=1 runs the job on the calling thread: a leaked per-task sink
  // would leave *this* thread logging into a destroyed buffer.
  exp::SweepRunner runner({.threads = 1});
  EXPECT_THROW({ runner.run(tasks); }, std::runtime_error);

  // Sink must be restored despite the unwind, and the throwing task's
  // captured lines still flushed.
  log_info("after sweep");

  set_log_sink(nullptr);
  set_log_level(prev_level);

  std::string text = captured.str();
  EXPECT_NE(text.find("before throw"), std::string::npos);
  EXPECT_NE(text.find("after sweep"), std::string::npos);
}

TEST(SweepRunner, StopRequestSkipsRemainingCells) {
  // Sequential runner: job 3 requests a stop, so jobs 4.. never run and
  // run_partial returns them as empty slots.
  exp::SweepRunner runner({.threads = 1, .capture_logs = false});
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 10; ++i) {
    tasks.emplace_back([i, &runner] {
      if (i == 3) runner.request_stop();
      return i * i;
    });
  }
  auto slots = runner.run_partial(tasks);
  ASSERT_EQ(slots.size(), 10u);
  for (int i = 0; i <= 3; ++i) {
    ASSERT_TRUE(slots[static_cast<std::size_t>(i)].has_value()) << i;
    EXPECT_EQ(*slots[static_cast<std::size_t>(i)], i * i);
  }
  for (int i = 4; i < 10; ++i) {
    EXPECT_FALSE(slots[static_cast<std::size_t>(i)].has_value()) << i;
  }
  EXPECT_TRUE(runner.stop_requested());
}

TEST(SweepRunner, StopRequestStopsParallelWorkersPromptly) {
  // In-flight jobs complete, and no job starts after the stop flag is
  // visible; with the flag raised by the first job, far fewer than all
  // cells should run (each worker claims at most a few before re-checking).
  exp::SweepRunner runner({.threads = 4, .capture_logs = false});
  std::atomic<int> ran{0};
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 1000; ++i) {
    tasks.emplace_back([i, &ran, &runner] {
      runner.request_stop();
      ran.fetch_add(1);
      return i;
    });
  }
  auto slots = runner.run_partial(tasks);
  int filled = 0;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (slots[i].has_value()) {
      ++filled;
      EXPECT_EQ(*slots[i], static_cast<int>(i));
    }
  }
  EXPECT_EQ(filled, ran.load());
  EXPECT_LT(filled, 1000) << "stop flag ignored: every cell still ran";
}

TEST(SweepRunner, RunThrowsWhenCancelled) {
  exp::SweepRunner runner({.threads = 1, .capture_logs = false});
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.emplace_back([i, &runner] {
      runner.request_stop();
      return i;
    });
  }
  EXPECT_THROW((void)runner.run(tasks), std::runtime_error);
}

TEST(SweepRunner, StopIsStickyAcrossRuns) {
  exp::SweepRunner runner({.threads = 1, .capture_logs = false});
  runner.request_stop();
  std::vector<std::function<int()>> tasks;
  tasks.emplace_back([] { return 1; });
  auto slots = runner.run_partial(tasks);
  EXPECT_FALSE(slots[0].has_value())
      << "a stopped runner must stay stopped (SIGINT between runs)";
}

TEST(SweepRunner, ResolvesThreadCounts) {
  EXPECT_GE(exp::SweepRunner({.threads = 0}).threads(), 1u);
  EXPECT_EQ(exp::SweepRunner({.threads = 3}).threads(), 3u);
}

TEST(ThreadsFromArgs, ParsesAndStripsFlag) {
  unsetenv("ILU_THREADS");
  // Mirror main()'s contract: argv[argc] is a nullptr terminator.
  const char* argv_in[] = {"bench", "pos1", "--threads", "6", "pos2"};
  char* argv[6];
  for (int i = 0; i < 5; ++i) argv[i] = const_cast<char*>(argv_in[i]);
  argv[5] = nullptr;
  int argc = 5;
  unsigned threads = exp::threads_from_args(argc, argv, 2);
  EXPECT_EQ(threads, 6u);
  ASSERT_EQ(argc, 3);
  EXPECT_STREQ(argv[1], "pos1");
  EXPECT_STREQ(argv[2], "pos2");
  EXPECT_EQ(argv[argc], nullptr);
}

TEST(ThreadsFromArgs, FallbackWhenAbsent) {
  unsetenv("ILU_THREADS");
  const char* argv_in[] = {"bench"};
  char* argv[1];
  argv[0] = const_cast<char*>(argv_in[0]);
  int argc = 1;
  EXPECT_EQ(exp::threads_from_args(argc, argv, 7), 7u);
  EXPECT_EQ(argc, 1);
}

}  // namespace
}  // namespace ilu
