// Property-based and randomized ("fuzz") tests: cross-check complex
// components against simple reference implementations and check invariants
// under random operation sequences.

#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <map>

#include "containers/cpu_model.hpp"
#include "keepalive/cache.hpp"
#include "keepalive/pool.hpp"
#include "queueing/invocation_queue.hpp"
#include "runtime/sim_runtime.hpp"
#include "trace/function_profile.hpp"
#include "util/rng.hpp"

namespace ilu {
namespace {

// ---------- KeepAliveCache vs a reference LRU model ----------

/// Straight-line reference: a list of (fn, release_time) containers with
/// LRU eviction and no TTL, processed per-invocation.
struct ReferenceLru {
  struct Entry {
    FunctionId fn;
    TimePoint last_used;
    TimePoint busy_until;
    std::uint32_t mem;
  };
  std::uint64_t capacity;
  std::uint64_t used = 0;
  std::list<Entry> entries;  // arbitrary order; scanned
  std::uint64_t cold = 0, warm = 0, dropped = 0;

  void invoke(FunctionId fn, std::uint32_t mem, Duration exec_warm,
              Duration exec_cold, TimePoint t) {
    // Warm hit: most recently used idle entry of fn.
    Entry* best = nullptr;
    for (auto& e : entries) {
      if (e.fn == fn && e.busy_until <= t) {
        if (best == nullptr || e.last_used > best->last_used) best = &e;
      }
    }
    if (best != nullptr) {
      ++warm;
      best->last_used = t;
      best->busy_until = t + exec_warm;
      return;
    }
    // Cold: evict LRU idle entries until it fits.
    while (used + mem > capacity) {
      Entry* victim = nullptr;
      for (auto& e : entries) {
        if (e.busy_until <= t &&
            (victim == nullptr || e.last_used < victim->last_used)) {
          victim = &e;
        }
      }
      if (victim == nullptr) break;
      used -= victim->mem;
      entries.remove_if([&](const Entry& e) { return &e == victim; });
    }
    if (used + mem > capacity) {
      ++dropped;
      return;
    }
    ++cold;
    used += mem;
    entries.push_back(Entry{fn, t, t + exec_cold, mem});
  }
};

TEST(FuzzKeepAliveCache, MatchesReferenceLruOnRandomWorkloads) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Rng rng(seed);
    std::vector<FunctionProfile> fns;
    for (int i = 0; i < 12; ++i) {
      fns.push_back(lookbusy(msecs(rng.uniform(50, 2000)),
                             static_cast<std::uint32_t>(rng.uniform(64, 512)),
                             msecs(rng.uniform(100, 3000))));
    }
    LruPolicy policy;
    KeepAliveCache cache(policy, {.capacity_mb = 1500}, fns);
    ReferenceLru ref{.capacity = 1500, .used = 0, .entries = {}};

    TimePoint t{};
    for (int k = 0; k < 3000; ++k) {
      t += msecs(rng.uniform(1, 500));
      auto fn = static_cast<FunctionId>(rng.uniform_index(fns.size()));
      cache.on_invocation(fn, t);
      ref.invoke(fn, fns[fn].mem_mb, fns[fn].warm_time, fns[fn].cold_time(),
                 t);
    }
    EXPECT_EQ(cache.stats().warm_starts, ref.warm) << "seed " << seed;
    EXPECT_EQ(cache.stats().cold_starts, ref.cold) << "seed " << seed;
    EXPECT_EQ(cache.stats().dropped, ref.dropped) << "seed " << seed;
  }
}

TEST(FuzzKeepAliveCache, MemoryNeverExceedsCapacityUnderAnyPolicy) {
  for (const char* pol : {"TTL", "LRU", "FREQ", "GD", "LND", "HIST"}) {
    auto policy = make_policy(pol);
    Rng rng(42);
    std::vector<FunctionProfile> fns;
    for (int i = 0; i < 20; ++i) {
      fns.push_back(lookbusy(msecs(rng.uniform(10, 800)),
                             static_cast<std::uint32_t>(rng.uniform(32, 700)),
                             msecs(rng.uniform(50, 4000))));
    }
    KeepAliveCache cache(*policy, {.capacity_mb = 2000}, fns);
    TimePoint t{};
    std::uint64_t admitted = 0;
    for (int k = 0; k < 5000; ++k) {
      t += msecs(rng.uniform(0, 300));
      auto out = cache.on_invocation(
          static_cast<FunctionId>(rng.uniform_index(fns.size())), t);
      if (!out.dropped) ++admitted;
      // Core safety invariant: never oversubscribe memory.
      ASSERT_LE(cache.used_mb(), 2000u) << pol << " step " << k;
    }
    EXPECT_GT(admitted, 0u);
    EXPECT_EQ(cache.stats().warm_starts + cache.stats().cold_starts +
                  cache.stats().dropped,
              5000u)
        << pol;
  }
}

// ---------- ContainerPool under random operations ----------

TEST(FuzzContainerPool, RandomOpsPreserveInvariants) {
  SimRuntime rt;
  LruPolicy policy;
  std::uint64_t evicted = 0;
  ContainerPool pool(rt, policy,
                     ContainerPool::Config{.capacity_mb = 3000,
                                           .free_buffer_mb = 0,
                                           .sweep_interval = Duration::zero()},
                     [&](const Container&) { ++evicted; });
  Rng rng(7);
  std::vector<ContainerHandle> running;
  std::uint64_t created = 0, removed = 0, returned = 0, acquired = 0;

  for (int step = 0; step < 20000; ++step) {
    double dice = rng.uniform();
    TimePoint now = usecs(step);
    if (dice < 0.40) {
      auto fn = static_cast<FunctionId>(rng.uniform_index(10));
      ContainerHandle c = pool.acquire(fn, now);
      if (c.valid()) {
        ASSERT_EQ(pool.get(c).state, ContainerState::Running);
        ASSERT_EQ(pool.get(c).fn, fn);
        running.push_back(c);
        ++acquired;
      }
    } else if (dice < 0.70) {
      auto fn = static_cast<FunctionId>(rng.uniform_index(10));
      auto profile =
          lookbusy(msecs(100), 100 + 37 * (fn % 5), msecs(500));
      ContainerHandle c = pool.add_container(fn, profile, now);
      if (c.valid()) {
        pool.get(c).state = ContainerState::Launching;
        pool.get(c).state = ContainerState::Running;
        running.push_back(c);
        ++created;
      }
    } else if (dice < 0.95 && !running.empty()) {
      auto i = static_cast<std::size_t>(rng.uniform_index(running.size()));
      pool.return_container(running[i], now);
      running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
      ++returned;
    } else if (!running.empty()) {
      auto i = static_cast<std::size_t>(rng.uniform_index(running.size()));
      pool.remove(running[i]);
      running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
      ++removed;
    }
    ASSERT_LE(pool.used_mb(), 3000u);
    ASSERT_EQ(pool.total_count(), running.size() + pool.idle_count());
  }
  // Conservation: every container created was acquired-from-idle, still
  // running, idle, removed, or evicted.
  EXPECT_EQ(created, running.size() + pool.idle_count() + removed + evicted +
                         0 * acquired + 0 * returned);
}

// ---------- InvocationQueue ordering property ----------

TEST(FuzzInvocationQueue, PopOrderMatchesSortedPriorities) {
  CharacteristicsMap chars;
  Rng rng(11);
  for (FunctionId f = 0; f < 20; ++f) {
    chars.on_arrival(f, secs(0));
    chars.record_warm(f, msecs(rng.uniform(10, 5000)));
    chars.record_cold(f, msecs(rng.uniform(100, 9000)));
  }
  for (const char* pol : {"FCFS", "SJF", "EEDF", "RARE"}) {
    auto policy = make_queue_policy(pol);
    InvocationQueue q(*policy, chars);
    std::vector<std::pair<double, std::uint64_t>> expected;  // (pri, seq)
    std::uint64_t seq = 0;
    for (int i = 0; i < 500; ++i) {
      QueueItem item;
      item.fn = static_cast<FunctionId>(rng.uniform_index(20));
      item.arrival = msecs(rng.uniform(0, 100000));
      bool warm = rng.bernoulli(0.5);
      expected.emplace_back(policy->priority(item, chars, warm), seq++);
      q.push(std::move(item), warm);
    }
    std::sort(expected.begin(), expected.end());
    for (const auto& [pri, s] : expected) {
      auto item = q.pop();
      ASSERT_TRUE(item.has_value()) << pol;
      ASSERT_EQ(item->seq, s) << pol;
    }
    EXPECT_TRUE(q.empty());
  }
}

// ---------- SimRuntime determinism under random scheduling ----------

TEST(FuzzSimRuntime, RandomDagReplaysIdentically) {
  auto run = [](std::uint64_t seed) {
    SimRuntime rt;
    Rng rng(seed);
    std::vector<std::uint64_t> log;
    std::function<void(int)> spawn = [&](int depth) {
      log.push_back(rt.now().count());
      if (depth >= 4) return;
      int children = static_cast<int>(rng.uniform_index(3));
      for (int c = 0; c < children; ++c) {
        rt.schedule(usecs(rng.uniform(1, 1000)),
                    [&, depth] { spawn(depth + 1); });
      }
    };
    for (int i = 0; i < 50; ++i) {
      rt.schedule(usecs(rng.uniform(0, 5000)), [&] { spawn(0); });
    }
    rt.run();
    return log;
  };
  EXPECT_EQ(run(3), run(3));
  EXPECT_NE(run(3), run(4));
}

// ---------- GPS CPU model fairness property sweep ----------

class CpuFairness : public ::testing::TestWithParam<int> {};

TEST_P(CpuFairness, EqualTasksFinishTogetherUnderAnyOvercommit) {
  int n = GetParam();
  SimRuntime rt;
  CpuModel cpu(rt, 4.0);
  std::vector<TimePoint> done(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    cpu.submit(1.0, 1.0, [&, i] { done[static_cast<std::size_t>(i)] = rt.now(); });
  }
  rt.run();
  for (int i = 1; i < n; ++i) {
    EXPECT_EQ(done[static_cast<std::size_t>(i)], done[0]);
  }
  // Work conservation: n tasks of 1 core-second on 4 cores.
  double expect = std::max(1.0, n / 4.0);
  EXPECT_NEAR(to_sec(done[0]), expect, 0.001);
}

INSTANTIATE_TEST_SUITE_P(Overcommit, CpuFairness,
                         ::testing::Values(1, 2, 4, 8, 16, 64));

}  // namespace
}  // namespace ilu
