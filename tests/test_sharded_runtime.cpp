#include "runtime/sharded_runtime.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace ilu {
namespace {

constexpr Duration kLook = usecs(100);

TEST(ShardedRuntime, SingleShardForwardsToSimRuntime) {
  ShardedRuntime srt(1, kLook);
  std::vector<int> order;
  srt.shard(0).schedule(msecs(2), [&] { order.push_back(2); });
  srt.shard(0).schedule(msecs(1), [&] { order.push_back(1); });
  srt.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(srt.now(), msecs(2));
  EXPECT_EQ(srt.windows(), 0u);  // fast path: no window machinery at all
  EXPECT_EQ(srt.messages(), 0u);
  EXPECT_TRUE(srt.idle());
}

// The determinism keystone: deliveries at the same instant execute in tag
// order — regardless of which shard sent them or when they were merged —
// and strictly before any plain-scheduled local event at that instant.
TEST(ShardedRuntime, MailboxOrdersByTagThenBeforeLocalEvents) {
  ShardedRuntime srt(2, kLook);
  std::vector<std::string> order;
  const TimePoint at = msecs(1);

  srt.shard(1).schedule(at, [&] { order.push_back("local"); });
  srt.send(0, 1, at, /*tag=*/7, Task([&] { order.push_back("tag7"); }));
  srt.send(1, 1, at, /*tag=*/3, Task([&] { order.push_back("tag3"); }));
  srt.send(0, 1, at, /*tag=*/5, Task([&] { order.push_back("tag5"); }));
  srt.run();

  EXPECT_EQ(order, (std::vector<std::string>{"tag3", "tag5", "tag7", "local"}));
  // Only the 0->1 messages cross shards; 1->1 is delivered directly.
  EXPECT_EQ(srt.messages(), 2u);
}

TEST(ShardedRuntime, PingPongPreservesCausality) {
  ShardedRuntime srt(2, kLook);
  std::vector<TimePoint> arrivals;
  std::uint64_t seq = 0;
  // Volley between the shards: each delivery sends the ball back with
  // exactly the lookahead latency. 20 hops => last arrival at 20 * kLook.
  std::function<void(std::size_t, int)> volley = [&](std::size_t me,
                                                     int remaining) {
    arrivals.push_back(srt.shard(me).now());
    if (remaining == 0) return;
    std::size_t peer = 1 - me;
    srt.send(me, peer, srt.shard(me).now() + kLook, seq++,
             Task([&, peer, remaining] { volley(peer, remaining - 1); }));
  };
  srt.shard(0).schedule(Duration::zero(), [&] { volley(0, 20); });
  srt.run();

  ASSERT_EQ(arrivals.size(), 21u);
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    EXPECT_EQ(arrivals[i], kLook * static_cast<std::int64_t>(i));
  }
  EXPECT_EQ(srt.messages(), 20u);
  EXPECT_GT(srt.windows(), 0u);
  EXPECT_TRUE(srt.idle());
}

TEST(ShardedRuntime, RunUntilAdvancesEveryShardClock) {
  ShardedRuntime srt(3, kLook);
  srt.shard(2).schedule(msecs(5), [] {});
  srt.run_until(msecs(50));
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(srt.shard(s).now(), msecs(50));
  }
}

// Same logical system at different shard counts must execute identically.
// Actors 1..N live on shard a % S and report to actor 0 (shard 0) with
// deterministic tags; the arrival log on shard 0 is the witness.
std::vector<std::string> run_actor_system(std::size_t shards) {
  constexpr std::size_t kActors = 5;
  ShardedRuntime srt(shards, kLook);
  auto shard_of = [&](std::size_t actor) { return actor % srt.shards(); };
  std::vector<std::string> log;
  std::vector<std::uint64_t> seq(kActors + 1, 0);
  auto tag = [&](std::size_t sender) {
    return seq[sender]++ * (kActors + 1) + sender;
  };

  // Actor 0 fans out one message per actor per round; every actor replies
  // after a fixed think time. Identical (deliver_at, tag) keys at any S.
  for (int round = 0; round < 4; ++round) {
    TimePoint fan = msecs(10) * (round + 1);
    for (std::size_t a = 1; a <= kActors; ++a) {
      srt.send(0, shard_of(a), fan + kLook, tag(0), Task([&, a] {
                 std::size_t me = shard_of(a);
                 srt.send(me, 0, srt.shard(me).now() + kLook, tag(a),
                          Task([&, a] {
                            log.push_back("reply" + std::to_string(a) + "@" +
                                          std::to_string(srt.now().count()));
                          }));
               }));
    }
  }
  srt.run();
  return log;
}

TEST(ShardedRuntime, ShardCountDoesNotChangeExecution) {
  auto serial = run_actor_system(1);
  EXPECT_EQ(serial.size(), 20u);
  EXPECT_EQ(run_actor_system(2), serial);
  EXPECT_EQ(run_actor_system(3), serial);
  EXPECT_EQ(run_actor_system(5), serial);
  EXPECT_EQ(run_actor_system(8), serial);
}

TEST(ShardedRuntime, RunForRepeatedCallsAccumulate) {
  ShardedRuntime srt(2, kLook);
  int fired = 0;
  srt.shard(1).schedule(msecs(30), [&] { ++fired; });
  srt.run_for(msecs(20));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(srt.now(), msecs(20));
  srt.run_for(msecs(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(srt.now(), msecs(40));
}

}  // namespace
}  // namespace ilu
