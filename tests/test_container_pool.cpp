#include "keepalive/pool.hpp"

#include <gtest/gtest.h>

#include "runtime/sim_runtime.hpp"
#include "trace/function_profile.hpp"

namespace ilu {
namespace {

class ContainerPoolTest : public ::testing::Test {
 protected:
  ContainerPoolTest()
      : pool_(rt_, policy_,
              ContainerPool::Config{.capacity_mb = 1000,
                                    .free_buffer_mb = 0,
                                    .sweep_interval = msecs(500)},
              [this](const Container& c) { evicted_.push_back(c.fn); }) {}

  ContainerHandle make_running(FunctionId fn, std::uint32_t mem) {
    auto profile = lookbusy(secs(1), mem, secs(1));
    ContainerHandle h = pool_.add_container(fn, profile, rt_.now());
    if (h.valid()) {
      Container& c = pool_.get(h);
      c.state = ContainerState::Launching;
      c.state = ContainerState::Running;
      ++c.entry.uses;
    }
    return h;
  }

  SimRuntime rt_;
  LruPolicy policy_;
  std::vector<FunctionId> evicted_;
  ContainerPool pool_;
};

TEST_F(ContainerPoolTest, AddReservesMemory) {
  ContainerHandle c = make_running(0, 300);
  ASSERT_TRUE(c.valid());
  EXPECT_EQ(pool_.used_mb(), 300u);
  EXPECT_EQ(pool_.total_count(), 1u);
  EXPECT_EQ(pool_.idle_count(), 0u);
}

TEST_F(ContainerPoolTest, AcquireReturnsNullWhenNoIdle) {
  make_running(0, 300);
  EXPECT_FALSE(pool_.acquire(0, rt_.now()).valid());
}

TEST_F(ContainerPoolTest, ReturnThenAcquireReusesContainer) {
  ContainerHandle c = make_running(0, 300);
  pool_.return_container(c, secs(1));
  EXPECT_TRUE(pool_.has_idle(0));
  ContainerHandle got = pool_.acquire(0, secs(2));
  EXPECT_EQ(got, c);
  EXPECT_EQ(pool_.get(got).state, ContainerState::Running);
  EXPECT_EQ(pool_.get(got).entry.uses, 2u);
}

TEST_F(ContainerPoolTest, AcquirePicksMostRecentlyUsed) {
  ContainerHandle a = make_running(0, 100);
  ContainerHandle b = make_running(0, 100);
  pool_.return_container(a, secs(1));
  pool_.return_container(b, secs(2));
  EXPECT_EQ(pool_.acquire(0, secs(3)), b);
}

TEST_F(ContainerPoolTest, MemoryPressureEvictsIdleLru) {
  ContainerHandle a = make_running(0, 400);
  ContainerHandle b = make_running(1, 400);
  pool_.return_container(a, secs(1));
  pool_.return_container(b, secs(2));
  // 800 used; adding 300 must evict fn0 (older).
  ContainerHandle c = make_running(2, 300);
  ASSERT_TRUE(c.valid());
  ASSERT_EQ(evicted_.size(), 1u);
  EXPECT_EQ(evicted_[0], 0u);
  EXPECT_EQ(pool_.evictions(), 1u);
  // The evicted container's handle is now stale.
  EXPECT_FALSE(pool_.alive(a));
  EXPECT_TRUE(pool_.alive(b));
}

TEST_F(ContainerPoolTest, BusyContainersCannotBeEvicted) {
  make_running(0, 600);
  make_running(1, 300);
  // All 900 busy; a 200 MB add must fail.
  EXPECT_FALSE(make_running(2, 200).valid());
  EXPECT_TRUE(evicted_.empty());
}

TEST_F(ContainerPoolTest, RemoveReleasesMemoryWithoutEvictionCallback) {
  ContainerHandle c = make_running(0, 300);
  pool_.remove(c);
  EXPECT_EQ(pool_.used_mb(), 0u);
  EXPECT_TRUE(evicted_.empty());
  EXPECT_FALSE(pool_.alive(c));
}

TEST_F(ContainerPoolTest, SweepRestoresFreeBuffer) {
  // Require 500 free: sweep must evict one 400 MB idle container.
  ContainerPool::Config cfg{.capacity_mb = 1000,
                            .free_buffer_mb = 500,
                            .sweep_interval = msecs(500)};
  // Rebuild a pool with a buffer (fixture pool has none): do it inline.
  std::vector<FunctionId> evicted;
  LruPolicy policy;
  ContainerPool pool(rt_, policy, cfg,
                     [&](const Container& c) { evicted.push_back(c.fn); });
  ContainerHandle x =
      pool.add_container(0, lookbusy(secs(1), 400, secs(1)), rt_.now());
  pool.get(x).state = ContainerState::Launching;
  pool.get(x).state = ContainerState::Running;
  ContainerHandle y =
      pool.add_container(1, lookbusy(secs(1), 400, secs(1)), rt_.now());
  pool.get(y).state = ContainerState::Launching;
  pool.get(y).state = ContainerState::Running;
  pool.return_container(x, secs(1));
  pool.return_container(y, secs(2));
  pool.sweep(secs(3));
  EXPECT_GE(pool.free_mb(), 500u);
  EXPECT_EQ(evicted.size(), 1u);
}

TEST_F(ContainerPoolTest, BackgroundSweepRunsOnTimer) {
  TtlPolicy ttl(secs(5));
  std::vector<FunctionId> evicted;
  ContainerPool pool(rt_, ttl,
                     ContainerPool::Config{.capacity_mb = 1000,
                                           .free_buffer_mb = 0,
                                           .sweep_interval = secs(1)},
                     [&](const Container& c) { evicted.push_back(c.fn); });
  ContainerHandle c =
      pool.add_container(0, lookbusy(secs(1), 100, secs(1)), rt_.now());
  pool.get(c).state = ContainerState::Launching;
  pool.get(c).state = ContainerState::Running;
  pool.return_container(c, rt_.now());
  pool.start();
  rt_.run_until(secs(10));
  pool.stop();
  EXPECT_EQ(evicted.size(), 1u);
  EXPECT_EQ(pool.expirations(), 1u);
}

TEST_F(ContainerPoolTest, StopCancelsSweepTimer) {
  pool_.start();
  pool_.stop();
  rt_.run();  // must terminate (no periodic timer alive)
  SUCCEED();
}

TEST_F(ContainerPoolTest, ShrinkCapacityEvictsIdle) {
  ContainerHandle a = make_running(0, 400);
  pool_.return_container(a, secs(1));
  pool_.set_capacity_mb(100);
  EXPECT_EQ(pool_.used_mb(), 0u);
  EXPECT_EQ(evicted_.size(), 1u);
}

TEST_F(ContainerPoolTest, ParkPrewarmedMakesIdle) {
  auto profile = lookbusy(secs(1), 200, secs(1));
  ContainerHandle c = pool_.add_container(3, profile, rt_.now());
  pool_.get(c).state = ContainerState::Launching;
  pool_.park_prewarmed(c, rt_.now());
  EXPECT_TRUE(pool_.has_idle(3));
  EXPECT_EQ(pool_.acquire(3, rt_.now()), c);
}

TEST_F(ContainerPoolTest, SlotRecyclingBumpsGeneration) {
  ContainerHandle a = make_running(0, 100);
  pool_.remove(a);
  // Next add reuses the slot with a new generation: same index, stale old
  // handle.
  ContainerHandle b = make_running(0, 100);
  EXPECT_EQ(b.index, a.index);
  EXPECT_NE(b.gen, a.gen);
  EXPECT_FALSE(pool_.alive(a));
  EXPECT_TRUE(pool_.alive(b));
}

}  // namespace
}  // namespace ilu
