#include "keepalive/simulator.hpp"

#include <gtest/gtest.h>

#include "exp/keepalive_sweep.hpp"
#include "trace/azure.hpp"
#include "trace/function_profile.hpp"
#include "trace/loadgen.hpp"

namespace ilu {
namespace {

Trace small_azure_trace() {
  AzureModelConfig cfg;
  cfg.population = 800;
  cfg.days = 0.25;  // 6 hours
  cfg.seed = 5;
  AzureTraceModel model(cfg);
  // Natural rates: force-scaling a small sample to a high request rate
  // makes same-function spawn starts dominate and masks policy behaviour.
  return model.sample_representative(80);
}

TEST(KeepAliveSim, RunsAndAccountsAllInvocations) {
  auto trace = small_azure_trace();
  auto r = run_keepalive_sim(trace, "LRU", 8 * 1024);
  EXPECT_EQ(r.stats.invocations, trace.events.size());
  EXPECT_EQ(r.stats.warm_starts + r.stats.cold_starts + r.stats.dropped,
            trace.events.size());
}

TEST(KeepAliveSim, LargerCacheNeverHurtsLru) {
  auto trace = small_azure_trace();
  auto small = run_keepalive_sim(trace, "LRU", 2 * 1024);
  auto large = run_keepalive_sim(trace, "LRU", 32 * 1024);
  EXPECT_LE(large.cold_fraction(), small.cold_fraction() + 1e-9);
}

TEST(KeepAliveSim, WorkConservingBeatsTtlAtLargeCache) {
  // With ample memory, TTL still expires rarely-used containers and eats
  // cold starts that LRU/GD avoid — the paper's core claim.
  auto trace = small_azure_trace();
  std::uint64_t cache_mb = 48 * 1024;
  auto ttl = run_keepalive_sim(trace, "TTL", cache_mb);
  auto lru = run_keepalive_sim(trace, "LRU", cache_mb);
  auto gd = run_keepalive_sim(trace, "GD", cache_mb);
  EXPECT_LT(lru.cold_fraction(), ttl.cold_fraction());
  EXPECT_LT(gd.cold_fraction(), ttl.cold_fraction());
}

TEST(KeepAliveSim, AllPoliciesRunOnSameTrace) {
  auto trace = small_azure_trace();
  for (const char* p : {"TTL", "LRU", "FREQ", "GD", "LND", "HIST"}) {
    auto r = run_keepalive_sim(trace, p, 8 * 1024);
    EXPECT_EQ(r.policy, p);
    EXPECT_GT(r.stats.invocations, 0u) << p;
    EXPECT_GE(r.cold_fraction(), 0.0) << p;
    EXPECT_LE(r.cold_fraction(), 1.0) << p;
  }
}

TEST(KeepAliveSim, SweepIsMonotoneInCapacityForGd) {
  auto trace = small_azure_trace();
  auto rs = sweep_cache_sizes(trace, "GD", {1024, 4096, 16384, 65536});
  ASSERT_EQ(rs.size(), 4u);
  // Not strictly monotone in theory (Belady anomalies), but over a 64x
  // range the trend must be clearly downward.
  EXPECT_LT(rs[3].exec_increase_pct(), rs[0].exec_increase_pct() + 1e-9);
}

TEST(KeepAliveSim, ZeroCapacityDropsEverything) {
  Trace t;
  t.functions = {lookbusy(secs(1), 100, secs(1))};
  t.duration = secs(10);
  t.events = {{secs(0), 0}, {secs(5), 0}};
  auto r = run_keepalive_sim(t, "LRU", 10);  // 10 MB < 100 MB
  EXPECT_EQ(r.stats.dropped, 2u);
}

TEST(KeepAliveSim, DeterministicAcrossRuns) {
  auto trace = small_azure_trace();
  auto a = run_keepalive_sim(trace, "GD", 4 * 1024);
  auto b = run_keepalive_sim(trace, "GD", 4 * 1024);
  EXPECT_EQ(a.stats.cold_starts, b.stats.cold_starts);
  EXPECT_EQ(a.stats.evictions, b.stats.evictions);
  EXPECT_EQ(a.stats.total_init_paid, b.stats.total_init_paid);
}

TEST(KeepAliveSim, HistBeatsTtlOnRegularWorkload) {
  // A workload of strictly periodic functions is HIST's best case: its
  // predictions are perfect, so it should at least match TTL.
  std::vector<SyntheticFunctionSpec> specs;
  for (int i = 0; i < 20; ++i) {
    specs.push_back({.profile = lookbusy(secs(1), 200, secs(3)),
                     .mean_iat = mins(12 + i),  // beyond the 10-min TTL
                     .exponential = false});
  }
  auto trace = make_synthetic_trace(specs, mins(240));
  auto ttl = run_keepalive_sim(trace, "TTL", 2 * 1024);
  auto hist = run_keepalive_sim(trace, "HIST", 2 * 1024);
  EXPECT_LT(hist.cold_fraction(), ttl.cold_fraction());
}

/// Property sweep: every policy, several capacities — invariants hold.
class PolicyCapacitySweep
    : public ::testing::TestWithParam<std::tuple<const char*, std::uint64_t>> {
};

TEST_P(PolicyCapacitySweep, InvariantsHold) {
  auto [policy, cap_mb] = GetParam();
  auto trace = small_azure_trace();
  auto r = run_keepalive_sim(trace, policy, cap_mb);
  EXPECT_EQ(r.stats.warm_starts + r.stats.cold_starts + r.stats.dropped,
            r.stats.invocations);
  EXPECT_GE(r.stats.total_init_paid, Duration::zero());
  // Paid init can never exceed cold_starts x max init.
  EXPECT_LE(r.stats.total_init_paid,
            Duration{static_cast<std::int64_t>(r.stats.cold_starts) *
                     secs(240).count()});
  EXPECT_GE(r.exec_increase_pct(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllPoliciesAllSizes, PolicyCapacitySweep,
    ::testing::Combine(
        ::testing::Values("TTL", "LRU", "FREQ", "GD", "LND", "HIST"),
        ::testing::Values(512u, 4096u, 32768u)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_" +
             std::to_string(std::get<1>(info.param)) + "mb";
    });

}  // namespace
}  // namespace ilu
