// Structural-invariant suite for the slab-backed ContainerPool (DESIGN.md
// §11): randomized churn with the pool's own O(n) validator run throughout,
// plus targeted checks for handle-generation reuse and the steady-state
// no-allocation guarantee of the slab free list.

#include <gtest/gtest.h>

#include "keepalive/pool.hpp"
#include "runtime/sim_runtime.hpp"
#include "trace/function_profile.hpp"
#include "util/rng.hpp"

namespace ilu {
namespace {

TEST(PoolInvariants, RandomChurnKeepsValidatorGreen) {
  SimRuntime rt;
  GreedyDualPolicy policy;
  std::uint64_t evicted = 0;
  ContainerPool pool(rt, policy,
                     ContainerPool::Config{.capacity_mb = 2500,
                                           .free_buffer_mb = 300,
                                           .sweep_interval = Duration::zero()},
                     [&](const Container&) { ++evicted; });
  Rng rng(1234);
  std::vector<ContainerHandle> running;
  std::string why;

  for (int step = 0; step < 30000; ++step) {
    double dice = rng.uniform();
    TimePoint now = usecs(step);
    auto fn = static_cast<FunctionId>(rng.uniform_index(8));
    if (dice < 0.35) {
      ContainerHandle c = pool.acquire(fn, now);
      if (c.valid()) running.push_back(c);
    } else if (dice < 0.65) {
      auto profile = lookbusy(msecs(100), 100 + 50 * (fn % 4), msecs(500));
      ContainerHandle c = pool.add_container(fn, profile, now);
      if (c.valid()) {
        pool.get(c).state = ContainerState::Launching;
        pool.get(c).state = ContainerState::Running;
        running.push_back(c);
      }
    } else if (dice < 0.72) {
      auto profile = lookbusy(msecs(100), 120, msecs(500));
      ContainerHandle c = pool.add_container(fn, profile, now);
      if (c.valid()) {
        pool.get(c).state = ContainerState::Launching;
        pool.park_prewarmed(c, now);
      }
    } else if (dice < 0.90 && !running.empty()) {
      auto i = static_cast<std::size_t>(rng.uniform_index(running.size()));
      pool.return_container(running[i], now);
      running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
    } else if (dice < 0.97 && !running.empty()) {
      auto i = static_cast<std::size_t>(rng.uniform_index(running.size()));
      pool.remove(running[i]);
      running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      pool.sweep(now);
    }
    if (step % 250 == 0) {
      ASSERT_TRUE(pool.validate(&why)) << "step " << step << ": " << why;
    }
    ASSERT_LE(pool.used_mb(), 2500u);
    ASSERT_EQ(pool.total_count(), running.size() + pool.idle_count());
    // Every handle we believe is running must still be live and Running.
    if (step % 1000 == 0) {
      for (ContainerHandle h : running) {
        ASSERT_TRUE(pool.alive(h));
        ASSERT_EQ(pool.get(h).state, ContainerState::Running);
      }
    }
  }
  ASSERT_TRUE(pool.validate(&why)) << why;
  EXPECT_GT(evicted, 0u);
}

TEST(PoolInvariants, ExpirySweepKeepsValidatorGreen) {
  SimRuntime rt;
  TtlPolicy ttl(secs(2));
  ContainerPool pool(rt, ttl,
                     ContainerPool::Config{.capacity_mb = 10000,
                                           .free_buffer_mb = 0,
                                           .sweep_interval = Duration::zero()},
                     nullptr);
  std::string why;
  // Park a wave of idle containers, let them age past the TTL, sweep, and
  // repeat: exercises expiry in canonical slab order plus slot recycling.
  for (int wave = 0; wave < 20; ++wave) {
    TimePoint base = secs(10 * wave);
    for (int i = 0; i < 12; ++i) {
      auto fn = static_cast<FunctionId>(i % 5);
      ContainerHandle c =
          pool.add_container(fn, lookbusy(msecs(50), 128, msecs(100)), base);
      ASSERT_TRUE(c.valid());
      pool.get(c).state = ContainerState::Launching;
      pool.get(c).state = ContainerState::Running;
      pool.return_container(c, base);
    }
    ASSERT_TRUE(pool.validate(&why)) << "wave " << wave << ": " << why;
    pool.sweep(base + secs(5));
    ASSERT_TRUE(pool.validate(&why)) << "wave " << wave << ": " << why;
    EXPECT_EQ(pool.idle_count(), 0u);
  }
  EXPECT_EQ(pool.expirations(), 20u * 12u);
}

TEST(PoolInvariants, HandleGenerationReuseNeverAliases) {
  SimRuntime rt;
  LruPolicy policy;
  ContainerPool pool(rt, policy,
                     ContainerPool::Config{.capacity_mb = 1000,
                                           .free_buffer_mb = 0,
                                           .sweep_interval = Duration::zero()},
                     nullptr);
  auto profile = lookbusy(msecs(50), 200, msecs(100));
  std::vector<ContainerHandle> stale;
  // Cycle the same slots many times; every retired handle must stay stale
  // even though its slot index is continuously recycled.
  for (int round = 0; round < 500; ++round) {
    ContainerHandle c = pool.add_container(0, profile, usecs(round));
    ASSERT_TRUE(c.valid());
    for (ContainerHandle old : stale) {
      ASSERT_FALSE(pool.alive(old));
      ASSERT_FALSE(old == c);
    }
    pool.remove(c);
    stale.push_back(c);
    if (stale.size() > 8) stale.erase(stale.begin());
  }
  EXPECT_EQ(pool.total_count(), 0u);
  // All churn reused one slot: the slab never grew past the first.
  EXPECT_EQ(pool.store().slot_count(), 1u);
}

TEST(PoolInvariants, SteadyStateChurnDoesNotGrowSlab) {
  SimRuntime rt;
  LruPolicy policy;
  ContainerPool pool(rt, policy,
                     ContainerPool::Config{.capacity_mb = 16 * 128,
                                           .free_buffer_mb = 0,
                                           .sweep_interval = Duration::zero()},
                     nullptr);
  auto profile = lookbusy(msecs(50), 128, msecs(100));
  // Fill to capacity, all idle.
  for (int i = 0; i < 16; ++i) {
    ContainerHandle c =
        pool.add_container(static_cast<FunctionId>(i % 4), profile, usecs(i));
    pool.get(c).state = ContainerState::Launching;
    pool.get(c).state = ContainerState::Running;
    pool.return_container(c, usecs(i));
  }
  std::uint64_t allocs_after_warmup = pool.store().allocations();
  // Steady-state churn: every add evicts one idle victim and recycles its
  // slot — the slab must not allocate again (instrumented-slab assertion).
  for (int i = 0; i < 5000; ++i) {
    ContainerHandle c = pool.add_container(static_cast<FunctionId>(i % 4),
                                           profile, usecs(100 + i));
    ASSERT_TRUE(c.valid());
    pool.get(c).state = ContainerState::Launching;
    pool.get(c).state = ContainerState::Running;
    pool.return_container(c, usecs(100 + i));
  }
  EXPECT_EQ(pool.store().allocations(), allocs_after_warmup);
  EXPECT_EQ(pool.store().slot_count(), 16u);
}

}  // namespace
}  // namespace ilu
