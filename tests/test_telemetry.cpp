// Telemetry sampler (obs/telemetry): cadence contract under virtual time,
// counter rates, ratios, registry wiring, exports — and the acceptance
// criterion that attaching a sampler to a sharded cluster run leaves the
// ExperimentReport byte-identical.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lb/cluster.hpp"
#include "metrics/report.hpp"
#include "obs/telemetry.hpp"
#include "runtime/sim_runtime.hpp"
#include "trace/azure.hpp"
#include "trace/loadgen.hpp"
#include "util/json.hpp"

namespace ilu {
namespace {

TEST(Telemetry, CadenceProducesOneFramePerPeriod) {
  SimRuntime rt;
  TelemetrySampler s(rt, msecs(100));
  s.add_probe("one", [] { return 1.0; });
  s.start();
  rt.run_until(msecs(1050));
  EXPECT_EQ(s.frames().size(), 10u) << "first frame at t=100ms, then every "
                                       "100ms through t=1000ms";
  EXPECT_EQ(s.frames()[0].ts, msecs(100));
  EXPECT_EQ(s.frames()[9].ts, msecs(1000));
  s.stop();
  rt.run_until(msecs(2000));
  EXPECT_EQ(s.frames().size(), 10u) << "no frames after stop()";
}

TEST(Telemetry, SampleNowAppendsOutOfSchedule) {
  SimRuntime rt;
  TelemetrySampler s(rt, secs(10));
  s.add_probe("v", [] { return 2.5; });
  s.sample_now();
  ASSERT_EQ(s.frames().size(), 1u);
  EXPECT_EQ(s.frames()[0].ts, Duration::zero());
  EXPECT_DOUBLE_EQ(s.frames()[0].values.at("v"), 2.5);
}

TEST(Telemetry, CounterProbeEmitsCumulativeAndRate) {
  SimRuntime rt;
  std::uint64_t done = 0;
  // 5 completions per 100 ms window → a steady 50/s.
  for (int i = 1; i <= 50; ++i) {
    rt.schedule(msecs(i * 20), [&done] { ++done; });
  }
  TelemetrySampler s(rt, msecs(100));
  s.add_counter_probe("completed", [&done] { return done; });
  s.start();
  rt.run_until(msecs(1001));
  ASSERT_EQ(s.frames().size(), 10u);
  EXPECT_DOUBLE_EQ(s.frames()[0].values.at("completed:rate"), 0.0)
      << "no previous frame to difference against";
  for (std::size_t i = 1; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(s.frames()[i].values.at("completed:rate"), 50.0)
        << "frame " << i;
  }
  EXPECT_DOUBLE_EQ(s.frames()[9].values.at("completed"), 50.0);
}

TEST(Telemetry, RegistryWiringEmitsAllInstrumentKinds) {
  SimRuntime rt;
  MetricsRegistry reg;
  reg.counter("invokes")->inc(7);
  reg.gauge("queue_depth")->set(3);
  reg.log_histogram("wait_ms")->observe(1.5);

  TelemetrySampler s(rt, msecs(100));
  s.add_registry("w0.", &reg);
  s.sample_now();
  ASSERT_EQ(s.frames().size(), 1u);
  const auto& v = s.frames()[0].values;
  EXPECT_DOUBLE_EQ(v.at("w0.invokes"), 7.0);
  EXPECT_DOUBLE_EQ(v.at("w0.invokes:rate"), 0.0);
  EXPECT_DOUBLE_EQ(v.at("w0.queue_depth"), 3.0);
  EXPECT_DOUBLE_EQ(v.at("w0.wait_ms:p50"), 1.5);
  EXPECT_TRUE(v.count("w0.wait_ms:p99"));
  EXPECT_TRUE(v.count("w0.wait_ms:p999"));
}

TEST(Telemetry, RatioComputedFromSameFrame) {
  SimRuntime rt;
  TelemetrySampler s(rt, msecs(100));
  s.add_probe("warm", [] { return 30.0; });
  s.add_probe("total", [] { return 40.0; });
  s.add_probe("empty", [] { return 0.0; });
  s.add_ratio("warm_hit_ratio", "warm", "total");
  s.add_ratio("div_by_zero", "warm", "empty");
  s.sample_now();
  const auto& v = s.frames()[0].values;
  EXPECT_DOUBLE_EQ(v.at("warm_hit_ratio"), 0.75);
  EXPECT_DOUBLE_EQ(v.at("div_by_zero"), 0.0);
}

TEST(Telemetry, StatusLineRendersLatestFrame) {
  SimRuntime rt;
  rt.schedule(secs(12), [] {});
  rt.run();
  TelemetrySampler s(rt, secs(1));
  EXPECT_EQ(s.status_line(), "");
  s.add_probe("depth", [] { return 4.0; });
  s.sample_now();
  std::string line = s.status_line();
  EXPECT_EQ(line.find("[t=12.0s]"), 0u) << line;
  EXPECT_NE(line.find("depth=4"), std::string::npos) << line;
}

TEST(Telemetry, StatusStreamMirrorsFrames) {
  SimRuntime rt;
  TelemetrySampler s(rt, msecs(100));
  s.add_probe("x", [] { return 1.0; });
  std::ostringstream os;
  s.set_status_stream(&os);
  s.start();
  rt.run_until(msecs(350));
  EXPECT_EQ(s.frames().size(), 3u);
  // One line per frame.
  std::string out = os.str();
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
}

TEST(Telemetry, JsonAndCsvExportRoundTrip) {
  SimRuntime rt;
  TelemetrySampler s(rt, msecs(100));
  std::uint64_t n = 0;
  rt.schedule(msecs(150), [&n] { ++n; });
  s.add_counter_probe("n", [&n] { return n; });
  s.start();
  rt.run_until(msecs(301));
  ASSERT_EQ(s.frames().size(), 3u);

  std::string jpath = ::testing::TempDir() + "telemetry.json";
  std::string cpath = ::testing::TempDir() + "telemetry.csv";
  s.write_json(jpath);
  s.write_csv(cpath);

  JsonValue doc = json_parse_file(jpath);
  EXPECT_DOUBLE_EQ(doc.find("cadence_us")->as_number(), 100000.0);
  const JsonValue* frames = doc.find("frames");
  ASSERT_NE(frames, nullptr);
  ASSERT_EQ(frames->as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(frames->as_array()[1].find("ts_us")->as_number(),
                   200000.0);
  EXPECT_DOUBLE_EQ(
      frames->as_array()[1].find("values")->find("n")->as_number(), 1.0);

  std::ifstream in(cpath);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header.find("ts_us"), 0u) << header;
  EXPECT_NE(header.find("n:rate"), std::string::npos) << header;
  int rows = 0;
  for (std::string line; std::getline(in, line);) ++rows;
  EXPECT_EQ(rows, 3);
  std::remove(jpath.c_str());
  std::remove(cpath.c_str());
}

// ---- determinism acceptance criterion ------------------------------------

TraceArena telemetry_arena() {
  AzureModelConfig cfg;
  cfg.population = 600;
  cfg.days = 0.03;
  cfg.seed = 91;
  cfg.dur_median_s = 0.3;
  cfg.dur_sigma = 1.2;
  cfg.max_dur_s = 4.0;
  cfg.min_init_s = 0.05;
  cfg.max_init_s = 1.5;
  AzureTraceModel model(cfg);
  return model.sample_random_arena(16, /*target_rps=*/2.0);
}

std::string run_sharded(const TraceArena& arena, bool telemetry,
                        std::size_t* frames_out) {
  ClusterConfig cfg;
  cfg.num_workers = 2;
  cfg.worker.cores = 4;
  cfg.worker.memory_mb = 4 * 1024;

  ShardedRuntime srt(2, cfg.rpc.lower_bound());
  Cluster cluster(srt, cfg);
  for (const auto& f : arena.functions) cluster.register_function(f);
  cluster.start();

  TelemetrySampler sampler(srt.shard(0), msecs(500));
  if (telemetry) {
    sampler.add_counter_probe("events",
                              [&srt] { return srt.total_events(); });
    sampler.add_probe("shard0_events", [&srt] {
      return static_cast<double>(srt.shard_events(0));
    });
    sampler.start();
  }

  OpenLoopDriver d(srt.shard(0),
                   [&](FunctionId fn,
                       std::function<void(const InvokeResult&)> cb) {
                     cluster.invoke(fn, std::move(cb));
                   });
  d.start(arena);
  while (!d.done()) srt.run_for(secs(30));
  if (telemetry) {
    sampler.sample_now();
    sampler.stop();
  }
  cluster.shutdown();
  if (frames_out != nullptr) *frames_out = sampler.frames().size();

  std::vector<std::string> names;
  for (const auto& f : arena.functions) names.push_back(f.name);
  ExperimentReport rep(std::move(names));
  rep.add_all(d.results());
  return rep.to_json().dump();
}

/// Sampling only ever reads atomics and snapshots — a sharded run with the
/// sampler attached must produce a byte-identical report to one without.
TEST(Telemetry, ShardedReportByteIdenticalWithSamplerOnOrOff) {
  TraceArena arena = telemetry_arena();
  std::size_t frames_on = 0;
  std::string with = run_sharded(arena, true, &frames_on);
  std::string without = run_sharded(arena, false, nullptr);
  EXPECT_GT(frames_on, 1u) << "sampler must actually have run";
  EXPECT_EQ(with, without);
}

}  // namespace
}  // namespace ilu
