#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace ilu {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, SubstreamsAreDeterministicAndDistinct) {
  Rng root(7);
  Rng s1 = root.substream(1);
  Rng s1_again = Rng(7).substream(1);
  Rng s2 = root.substream(2);
  EXPECT_EQ(s1.next_u64(), s1_again.next_u64());
  EXPECT_NE(Rng(7).substream(1).next_u64(), s2.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform(5.0, 9.0);
    ASSERT_GE(u, 5.0);
    ASSERT_LT(u, 9.0);
  }
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(5);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70000; ++i) {
    ++counts[rng.uniform_index(7)];
  }
  for (int c : counts) {
    EXPECT_GT(c, 8000);
    EXPECT_LT(c, 12000);
  }
}

TEST(Rng, ExponentialMeanConverges) {
  Rng rng(6);
  double sum = 0.0;
  constexpr int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, ExponentialIsNonNegative) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_GE(rng.exponential(0.001), 0.0);
  }
}

TEST(Rng, NormalMomentsConverge) {
  Rng rng(8);
  double sum = 0.0, sq = 0.0;
  constexpr int n = 200000;
  for (int i = 0; i < n; ++i) {
    double v = rng.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, LognormalMedianConverges) {
  Rng rng(9);
  std::vector<double> v;
  constexpr int n = 100001;
  v.reserve(n);
  for (int i = 0; i < n; ++i) v.push_back(rng.lognormal_median(50.0, 1.0));
  std::nth_element(v.begin(), v.begin() + n / 2, v.end());
  EXPECT_NEAR(v[n / 2], 50.0, 2.0);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(10);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(Rng, PoissonMeanSmallLambda) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(2.5));
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Rng, PoissonMeanLargeLambda) {
  Rng rng(12);
  double sum = 0.0;
  constexpr int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(100.0));
  EXPECT_NEAR(sum / n, 100.0, 1.0);
}

TEST(Rng, PoissonZeroLambda) {
  Rng rng(13);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(14);
  int hits = 0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(15);
  std::vector<double> w{1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(16);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

}  // namespace
}  // namespace ilu
