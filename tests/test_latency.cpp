#include "runtime/latency.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace ilu {
namespace {

TEST(LatencyModel, ZeroAlwaysZero) {
  Rng rng(1);
  auto m = LatencyModel::zero();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(m.sample(rng), Duration::zero());
  EXPECT_EQ(m.mean(), Duration::zero());
}

TEST(LatencyModel, ConstantIsExact) {
  Rng rng(2);
  auto m = LatencyModel::constant(msecs(3));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(m.sample(rng), msecs(3));
  EXPECT_EQ(m.mean(), msecs(3));
}

TEST(LatencyModel, UniformWithinBounds) {
  Rng rng(3);
  auto m = LatencyModel::uniform(msecs(1), msecs(5));
  for (int i = 0; i < 10000; ++i) {
    auto s = m.sample(rng);
    ASSERT_GE(s, msecs(1));
    ASSERT_LE(s, msecs(5));
  }
  EXPECT_EQ(m.mean(), msecs(3));
}

TEST(LatencyModel, NormalClampedNonNegative) {
  Rng rng(4);
  auto m = LatencyModel::normal(usecs(100), usecs(500));
  for (int i = 0; i < 10000; ++i) {
    ASSERT_GE(m.sample(rng), Duration::zero());
  }
}

TEST(LatencyModel, NormalSampleMeanConverges) {
  Rng rng(5);
  auto m = LatencyModel::normal(msecs(10), msecs(1));
  Summary s;
  for (int i = 0; i < 50000; ++i) s.add_ms(m.sample(rng));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
}

TEST(LatencyModel, LognormalMedianConverges) {
  Rng rng(6);
  auto m = LatencyModel::lognormal(msecs(20), 0.5);
  Summary s;
  for (int i = 0; i < 50000; ++i) s.add_ms(m.sample(rng));
  EXPECT_NEAR(s.p50(), 20.0, 0.5);
  // Right-skew: mean above median.
  EXPECT_GT(s.mean(), s.p50());
}

TEST(LatencyModel, LognormalAnalyticMean) {
  auto m = LatencyModel::lognormal(msecs(20), 0.5);
  // E = median * exp(sigma^2/2) = 20 * exp(0.125) ~ 22.66 ms
  EXPECT_NEAR(to_ms(m.mean()), 22.66, 0.05);
}

TEST(LatencyModel, SpikyAddsTailMass) {
  Rng rng(7);
  auto m = LatencyModel::spiky(LatencyModel::constant(msecs(1)), 0.1,
                               LatencyModel::constant(msecs(100)));
  int spikes = 0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (m.sample(rng) > msecs(50)) ++spikes;
  }
  EXPECT_NEAR(static_cast<double>(spikes) / n, 0.1, 0.01);
  // mean = 1 + 0.1 * 100 = 11 ms
  EXPECT_NEAR(to_ms(m.mean()), 11.0, 0.01);
}

TEST(LatencyModel, SpikyZeroProbabilityIsBase) {
  Rng rng(8);
  auto m = LatencyModel::spiky(LatencyModel::constant(msecs(2)), 0.0,
                               LatencyModel::constant(secs(1)));
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(m.sample(rng), msecs(2));
}

TEST(LatencyModel, DefaultConstructedIsZero) {
  Rng rng(9);
  LatencyModel m;
  EXPECT_EQ(m.sample(rng), Duration::zero());
}

TEST(LatencyModel, SamplingIsDeterministicGivenSeed) {
  auto m = LatencyModel::lognormal(msecs(5), 1.0);
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(m.sample(a), m.sample(b));
  }
}

}  // namespace
}  // namespace ilu
