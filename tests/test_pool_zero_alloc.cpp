// Counting-allocator proof of the slab pool's zero-steady-state-allocation
// guarantee (DESIGN.md §11): after warm-up, the acquire/return hot path and
// the add/evict churn path must not touch the heap at all. Global
// operator new/delete are replaced in this binary only, so the test lives in
// its own executable rather than the shared suite.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "keepalive/pool.hpp"
#include "runtime/sim_runtime.hpp"
#include "trace/function_profile.hpp"

namespace {
std::atomic<std::uint64_t> g_new_calls{0};
}  // namespace

void* operator new(std::size_t size) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace ilu {
namespace {

constexpr int kFns = 8;
constexpr std::uint32_t kMemMb = 128;

TEST(PoolZeroAlloc, WarmAcquireReturnDoesNotAllocate) {
  SimRuntime rt;
  LruPolicy policy;
  ContainerPool pool(rt, policy,
                     ContainerPool::Config{.capacity_mb = 2 * kFns * kMemMb,
                                           .free_buffer_mb = 0,
                                           .sweep_interval = Duration::zero()},
                     nullptr);
  auto profile = lookbusy(msecs(100), kMemMb, msecs(500));
  // Warm-up: one idle container per function, plus a first acquire/return
  // round so every lazily grown structure reaches steady-state capacity.
  for (int i = 0; i < kFns; ++i) {
    ContainerHandle c =
        pool.add_container(static_cast<FunctionId>(i), profile, usecs(i));
    ASSERT_TRUE(c.valid());
    pool.get(c).state = ContainerState::Launching;
    pool.get(c).state = ContainerState::Running;
    pool.return_container(c, usecs(i));
  }
  for (int i = 0; i < kFns; ++i) {
    ContainerHandle c = pool.acquire(static_cast<FunctionId>(i), usecs(10 + i));
    ASSERT_TRUE(c.valid());
    pool.return_container(c, usecs(10 + i));
  }

  std::uint64_t before = g_new_calls.load(std::memory_order_relaxed);
  std::uint64_t t = 100;
  bool all_valid = true;
  for (int i = 0; i < 10000; ++i) {
    FunctionId fn = static_cast<FunctionId>(i % kFns);
    ContainerHandle c = pool.acquire(fn, usecs(t));
    all_valid = all_valid && c.valid();
    if (c.valid()) pool.return_container(c, usecs(t + 1));
    t += 2;
  }
  std::uint64_t after = g_new_calls.load(std::memory_order_relaxed);
  EXPECT_TRUE(all_valid);
  EXPECT_EQ(after - before, 0u)
      << "warm acquire/return path allocated " << (after - before) << " times";
}

TEST(PoolZeroAlloc, SteadyStateAddEvictChurnDoesNotAllocate) {
  SimRuntime rt;
  LruPolicy policy;
  ContainerPool pool(rt, policy,
                     ContainerPool::Config{.capacity_mb = kFns * kMemMb,
                                           .free_buffer_mb = 0,
                                           .sweep_interval = Duration::zero()},
                     nullptr);
  auto profile = lookbusy(msecs(100), kMemMb, msecs(500));
  // Warm-up to capacity so every later add evicts and recycles a slot.
  for (int i = 0; i < 4 * kFns; ++i) {
    ContainerHandle c = pool.add_container(static_cast<FunctionId>(i % kFns),
                                           profile, usecs(i));
    ASSERT_TRUE(c.valid());
    pool.get(c).state = ContainerState::Launching;
    pool.get(c).state = ContainerState::Running;
    pool.return_container(c, usecs(i));
  }

  std::uint64_t before = g_new_calls.load(std::memory_order_relaxed);
  std::uint64_t t = 1000;
  bool all_valid = true;
  for (int i = 0; i < 10000; ++i) {
    ContainerHandle c = pool.add_container(static_cast<FunctionId>(i % kFns),
                                           profile, usecs(t));
    all_valid = all_valid && c.valid();
    if (c.valid()) {
      pool.get(c).state = ContainerState::Launching;
      pool.get(c).state = ContainerState::Running;
      pool.return_container(c, usecs(t + 1));
    }
    t += 2;
  }
  std::uint64_t after = g_new_calls.load(std::memory_order_relaxed);
  EXPECT_TRUE(all_valid);
  EXPECT_EQ(after - before, 0u)
      << "add/evict churn path allocated " << (after - before) << " times";
}

}  // namespace
}  // namespace ilu
