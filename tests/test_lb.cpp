#include <gtest/gtest.h>

#include <set>

#include "lb/chbl.hpp"
#include "lb/cluster.hpp"
#include "runtime/sim_runtime.hpp"
#include "trace/function_profile.hpp"

namespace ilu {
namespace {

TEST(ConsistentHashRing, CandidatesCoverAllWorkersOnce) {
  ConsistentHashRing ring(32);
  for (std::size_t i = 0; i < 5; ++i) ring.add_worker(i);
  auto cands = ring.candidates("some_function");
  EXPECT_EQ(cands.size(), 5u);
  std::set<std::size_t> uniq(cands.begin(), cands.end());
  EXPECT_EQ(uniq.size(), 5u);
}

TEST(ConsistentHashRing, StableForSameKey) {
  ConsistentHashRing ring(32);
  for (std::size_t i = 0; i < 4; ++i) ring.add_worker(i);
  EXPECT_EQ(ring.candidates("fn_a"), ring.candidates("fn_a"));
}

TEST(ConsistentHashRing, DifferentKeysSpreadAcrossWorkers) {
  ConsistentHashRing ring(64);
  for (std::size_t i = 0; i < 4; ++i) ring.add_worker(i);
  std::set<std::size_t> homes;
  for (int k = 0; k < 100; ++k) {
    homes.insert(ring.candidates("fn_" + std::to_string(k)).front());
  }
  EXPECT_EQ(homes.size(), 4u);
}

TEST(ConsistentHashRing, RemovalOnlyMovesAffectedKeys) {
  ConsistentHashRing ring(64);
  for (std::size_t i = 0; i < 4; ++i) ring.add_worker(i);
  std::vector<std::size_t> before;
  for (int k = 0; k < 200; ++k) {
    before.push_back(ring.candidates("fn_" + std::to_string(k)).front());
  }
  ring.remove_worker(2);
  int moved = 0;
  for (int k = 0; k < 200; ++k) {
    auto now = ring.candidates("fn_" + std::to_string(k)).front();
    if (now != before[k]) {
      ++moved;
      EXPECT_EQ(before[k], 2u);  // only keys homed on worker 2 move
    }
  }
  EXPECT_GT(moved, 0);
}

TEST(ChblBalancer, PicksHomeWorkerWhenUnderBound) {
  ChblBalancer lb(4);
  std::vector<double> loads{1.0, 1.0, 1.0, 1.0};
  std::size_t home = lb.pick("fn_x", loads);
  // All equal load: home worker chosen, no forwarding.
  EXPECT_EQ(lb.last_hops(), 0u);
  EXPECT_LT(home, 4u);
}

TEST(ChblBalancer, ForwardsWhenHomeOverloaded) {
  ChblBalancer lb(4, ChblBalancer::Config{.bound_factor = 1.5});
  std::vector<double> loads{1.0, 1.0, 1.0, 1.0};
  std::size_t home = lb.pick("fn_x", loads);
  loads[home] = 100.0;  // overload the home
  std::size_t next = lb.pick("fn_x", loads);
  EXPECT_NE(next, home);
  EXPECT_GE(lb.last_hops(), 1u);
}

TEST(ChblBalancer, FallsBackToLeastLoadedWhenAllOver) {
  ChblBalancer lb(3, ChblBalancer::Config{.bound_factor = 0.001});
  std::vector<double> loads{50.0, 10.0, 90.0};
  EXPECT_EQ(lb.pick("fn_y", loads), 1u);
}

TEST(ChblBalancer, BoundedLoadInvariantUnderStream) {
  // Property: after routing a stream with CH-BL where each assignment adds
  // load 1, no worker's load exceeds bound*avg + 1 at assignment time
  // (unless everyone is over).
  ChblBalancer lb(8, ChblBalancer::Config{.bound_factor = 1.25});
  std::vector<double> loads(8, 0.0);
  for (int k = 0; k < 2000; ++k) {
    std::string key = "fn_" + std::to_string(k % 37);
    double avg = 0.0;
    for (double l : loads) avg += l;
    avg = std::max(1.0, avg / 8.0);
    std::size_t w = lb.pick(key, loads);
    EXPECT_LE(loads[w], 1.25 * avg + 1e-9);
    loads[w] += 1.0;
    // Decay to emulate completions.
    for (double& l : loads) l *= 0.995;
  }
}

TEST(Cluster, RoutesAndCompletesInvocations) {
  SimRuntime rt;
  ClusterConfig cfg;
  cfg.num_workers = 3;
  cfg.worker.cores = 4;
  cfg.worker.memory_mb = 2048;
  Cluster cluster(rt, cfg);
  auto fn = cluster.register_function(pyaes());
  cluster.start();
  int done = 0;
  for (int i = 0; i < 10; ++i) {
    cluster.invoke(fn, [&](const InvokeResult& r) {
      EXPECT_TRUE(r.success);
      ++done;
    });
  }
  rt.run_for(mins(2));
  cluster.shutdown();
  EXPECT_EQ(done, 10);
}

TEST(Cluster, ChblKeepsFunctionLocality) {
  SimRuntime rt;
  ClusterConfig cfg;
  cfg.num_workers = 4;
  cfg.worker.cores = 8;
  cfg.lb = LbPolicy::ChBl;
  Cluster cluster(rt, cfg);
  auto fn = cluster.register_function(pyaes());
  cluster.start();
  // Sequential invocations (low load): all should go to the home worker,
  // maximizing warm starts.
  int done = 0;
  std::function<void(int)> chain = [&](int remaining) {
    if (remaining == 0) return;
    cluster.invoke(fn, [&, remaining](const InvokeResult&) {
      ++done;
      chain(remaining - 1);
    });
  };
  chain(12);
  rt.run_for(mins(5));
  cluster.shutdown();
  EXPECT_EQ(done, 12);
  // Exactly one worker got everything.
  int active_workers = 0;
  for (auto c : cluster.routed()) {
    if (c > 0) ++active_workers;
  }
  EXPECT_EQ(active_workers, 1);
  EXPECT_EQ(cluster.forwarded(), 0u);
  // Locality means exactly one cold start across 12 invocations.
  std::uint64_t cold = 0;
  for (std::size_t i = 0; i < cluster.num_workers(); ++i) {
    cold += cluster.worker(i).cold_starts();
  }
  EXPECT_EQ(cold, 1u);
}

TEST(Cluster, RoundRobinSpreadsLoad) {
  SimRuntime rt;
  ClusterConfig cfg;
  cfg.num_workers = 4;
  cfg.lb = LbPolicy::RoundRobin;
  Cluster cluster(rt, cfg);
  auto fn = cluster.register_function(pyaes());
  cluster.start();
  for (int i = 0; i < 8; ++i) {
    cluster.invoke(fn, [](const InvokeResult&) {});
  }
  rt.run_for(mins(1));
  cluster.shutdown();
  for (auto c : cluster.routed()) EXPECT_EQ(c, 2u);
}

TEST(Cluster, LeastLoadedAvoidsBusyWorker) {
  SimRuntime rt;
  ClusterConfig cfg;
  cfg.num_workers = 2;
  cfg.lb = LbPolicy::LeastLoaded;
  cfg.worker.cores = 2;
  Cluster cluster(rt, cfg);
  auto fn = cluster.register_function(
      lookbusy(secs(30), 128, secs(1)));  // long-running
  cluster.start();
  for (int i = 0; i < 4; ++i) {
    cluster.invoke(fn, [](const InvokeResult&) {});
    rt.run_for(secs(1));
  }
  rt.run_for(secs(5));
  // Invocations alternate between the two workers.
  EXPECT_EQ(cluster.routed()[0], 2u);
  EXPECT_EQ(cluster.routed()[1], 2u);
  cluster.shutdown();
}

}  // namespace
}  // namespace ilu
