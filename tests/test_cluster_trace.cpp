// Cluster-level integration: Azure-model traffic through CH-BL clusters,
// checked with the metrics layer.

#include <gtest/gtest.h>

#include "lb/cluster.hpp"
#include "metrics/report.hpp"
#include "runtime/sim_runtime.hpp"
#include "trace/azure.hpp"
#include "trace/function_profile.hpp"
#include "trace/loadgen.hpp"

namespace ilu {
namespace {

Trace small_cluster_trace() {
  AzureModelConfig cfg;
  cfg.population = 1500;
  cfg.days = 0.05;  // 72 minutes
  cfg.seed = 77;
  // Short functions keep the simulated cluster far from saturation.
  cfg.dur_median_s = 0.4;
  cfg.dur_sigma = 1.0;
  cfg.max_dur_s = 5.0;
  AzureTraceModel model(cfg);
  return model.sample_random(40, /*target_rps=*/3.0);
}

ExperimentReport replay(Cluster& cluster, SimRuntime& rt, const Trace& trace) {
  OpenLoopDriver d(rt, [&](FunctionId fn,
                           std::function<void(const InvokeResult&)> cb) {
    cluster.invoke(fn, std::move(cb));
  });
  d.start(trace);
  while (!d.done()) rt.run_for(secs(30));
  std::vector<std::string> names;
  for (const auto& f : trace.functions) names.push_back(f.name);
  ExperimentReport rep(std::move(names));
  rep.add_all(d.results());
  return rep;
}

TEST(ClusterTrace, ChblCompletesAzureTraffic) {
  SimRuntime rt;
  ClusterConfig cfg;
  cfg.num_workers = 4;
  cfg.worker.cores = 8;
  cfg.worker.memory_mb = 8 * 1024;
  Cluster cluster(rt, cfg);
  auto trace = small_cluster_trace();
  for (const auto& f : trace.functions) cluster.register_function(f);
  cluster.start();
  auto rep = replay(cluster, rt, trace);
  cluster.shutdown();

  EXPECT_EQ(rep.global().invocations, trace.events.size());
  EXPECT_EQ(rep.global().dropped, 0u);
  EXPECT_EQ(rep.global().failed, 0u);
  EXPECT_GT(rep.global().warm_ratio(), 0.5);
}

TEST(ClusterTrace, ChblBeatsRoundRobinOnWarmRatio) {
  auto trace = small_cluster_trace();
  auto run = [&](LbPolicy lb) {
    SimRuntime rt;
    ClusterConfig cfg;
    cfg.num_workers = 4;
    cfg.worker.cores = 8;
    cfg.worker.memory_mb = 8 * 1024;
    cfg.lb = lb;
    Cluster cluster(rt, cfg);
    for (const auto& f : trace.functions) cluster.register_function(f);
    cluster.start();
    auto rep = replay(cluster, rt, trace);
    cluster.shutdown();
    return rep.global().warm_ratio();
  };
  EXPECT_GT(run(LbPolicy::ChBl), run(LbPolicy::RoundRobin));
}

TEST(ClusterTrace, PerFunctionRowsCoverEveryActiveFunction) {
  SimRuntime rt;
  ClusterConfig cfg;
  cfg.num_workers = 2;
  cfg.worker.cores = 8;
  Cluster cluster(rt, cfg);
  auto trace = small_cluster_trace();
  for (const auto& f : trace.functions) cluster.register_function(f);
  cluster.start();
  auto rep = replay(cluster, rt, trace);
  cluster.shutdown();
  std::vector<bool> seen(trace.functions.size(), false);
  for (const auto& e : trace.events) seen[e.fn] = true;
  for (FunctionId f = 0; f < trace.functions.size(); ++f) {
    if (seen[f]) {
      ASSERT_NE(rep.function(f), nullptr) << f;
      EXPECT_EQ(rep.function(f)->name, trace.functions[f].name);
    }
  }
}

}  // namespace
}  // namespace ilu
